//! The *select* method (§4.4, Table 3's last row).
//!
//! "The last row, select method, shows the error rates that would be
//! achieved if the method that gives the best result on the estimation is
//! used for predicting the whole data set." The estimation is the §3.3
//! five-split maximum; the winner's *true* error is what gets reported —
//! at 1 % sampling this beats even NN-E on average, because applu's best
//! estimated model is LR-B.

use crate::sampled::SampledRun;
use fault::{Error, Result};
use mlmodels::ModelKind;
use serde::{Deserialize, Serialize};

/// Outcome of the select method at one sampling rate.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SelectOutcome {
    /// Sampling rate.
    pub rate: f64,
    /// Model chosen by the estimated (max) error.
    pub chosen: ModelKind,
    /// True error of the chosen model over the full space.
    pub true_error: f64,
}

/// Apply the select method to a finished sampled run at one rate.
///
/// Panicking wrapper over [`try_select_method_error`].
pub fn select_method_error(run: &SampledRun, rate: f64) -> SelectOutcome {
    match try_select_method_error(run, rate) {
        Ok(o) => o,
        Err(e) => panic!("select method: {e}"),
    }
}

/// Fallible select method: pick the candidate with the lowest estimated
/// (max) error among those that have a finite estimate.
///
/// Candidates whose fit was dropped never appear in `run.points`, and
/// candidates without a usable estimate (estimation disabled or failed)
/// are skipped with a telemetry point — this is the §4.4 protocol
/// degrading gracefully. No points at the rate at all is
/// [`Error::InvalidInput`]; points existing but none having a usable
/// estimate is [`Error::NoViableModel`] listing each one's defect.
pub fn try_select_method_error(run: &SampledRun, rate: f64) -> Result<SelectOutcome> {
    let candidates: Vec<_> = run
        .points
        .iter()
        .filter(|p| (p.rate - rate).abs() < 1e-12)
        .collect();
    if candidates.is_empty() {
        return Err(Error::invalid(format!("no points at rate {rate}")));
    }
    let chosen = candidates
        .iter()
        .filter(|p| {
            let usable = p.estimated.is_some_and(|e| e.max.is_finite());
            if !usable {
                telemetry::point!("select/skip_unestimated", model = p.model.abbrev());
            }
            usable
        })
        .min_by(|a, b| {
            let ea = a.estimated.map_or(f64::INFINITY, |e| e.max);
            let eb = b.estimated.map_or(f64::INFINITY, |e| e.max);
            ea.total_cmp(&eb)
        });
    match chosen {
        Some(p) => Ok(SelectOutcome {
            rate,
            chosen: p.model,
            true_error: p.true_error,
        }),
        None => Err(Error::NoViableModel {
            reasons: candidates
                .iter()
                .map(|p| {
                    (
                        p.model.abbrev().to_string(),
                        match p.estimated {
                            Some(e) => format!("non-finite error estimate ({})", e.max),
                            None => "no error estimate".to_string(),
                        },
                    )
                })
                .collect(),
        }),
    }
}

/// Select outcomes for every rate in a run.
pub fn select_method_series(run: &SampledRun) -> Vec<SelectOutcome> {
    let mut rates: Vec<f64> = run.points.iter().map(|p| p.rate).collect();
    rates.sort_by(f64::total_cmp);
    rates.dedup();
    rates
        .into_iter()
        .map(|r| select_method_error(run, r))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampled::SampledPoint;
    use cpusim::Benchmark;
    use mlmodels::crossval::ErrorEstimate;

    fn fake_run() -> SampledRun {
        let mk = |model, rate, true_error, est_max| SampledPoint {
            model,
            rate,
            sample_size: 46,
            true_error,
            true_error_std: 0.5,
            estimated: Some(ErrorEstimate {
                mean: est_max * 0.8,
                max: est_max,
            }),
        };
        SampledRun {
            benchmark: Benchmark::Applu,
            space_size: 4608,
            range: 1.6,
            variation: 0.15,
            points: vec![
                // At 1%: LR-B estimates best (and is truly better) — the
                // applu case from the paper.
                mk(ModelKind::NnE, 0.01, 1.8, 2.5),
                mk(ModelKind::LrB, 0.01, 1.2, 1.5),
                // At 3%: NN-E wins.
                mk(ModelKind::NnE, 0.03, 0.6, 0.8),
                mk(ModelKind::LrB, 0.03, 1.1, 1.4),
            ],
            dropped: vec![],
        }
    }

    #[test]
    fn picks_best_estimated_model() {
        let run = fake_run();
        let s1 = select_method_error(&run, 0.01);
        assert_eq!(s1.chosen, ModelKind::LrB);
        assert_eq!(s1.true_error, 1.2);
        let s3 = select_method_error(&run, 0.03);
        assert_eq!(s3.chosen, ModelKind::NnE);
    }

    #[test]
    fn series_covers_all_rates() {
        let run = fake_run();
        let series = select_method_series(&run);
        assert_eq!(series.len(), 2);
        assert_eq!(series[0].rate, 0.01);
        assert_eq!(series[1].rate, 0.03);
    }

    #[test]
    #[should_panic(expected = "no points at rate")]
    fn missing_rate_panics() {
        let run = fake_run();
        let _ = select_method_error(&run, 0.02);
    }

    #[test]
    fn missing_rate_is_invalid_input() {
        let run = fake_run();
        let err = try_select_method_error(&run, 0.02).expect_err("no points");
        assert_eq!(err.kind(), "invalid");
    }

    #[test]
    fn unestimated_candidates_are_skipped_not_fatal() {
        let mut run = fake_run();
        // Knock out NN-E's estimate at 1%: LR-B must still be chosen.
        run.points[0].estimated = None;
        let s = try_select_method_error(&run, 0.01).expect("one viable candidate");
        assert_eq!(s.chosen, ModelKind::LrB);
        // Knock out both: typed NoViableModel naming each candidate.
        run.points[1].estimated = None;
        let err = try_select_method_error(&run, 0.01).expect_err("no viable");
        assert_eq!(err.kind(), "no_viable_model");
        assert!(err.to_string().contains("NN-E") && err.to_string().contains("LR-B"));
    }
}
