//! The *select* method (§4.4, Table 3's last row).
//!
//! "The last row, select method, shows the error rates that would be
//! achieved if the method that gives the best result on the estimation is
//! used for predicting the whole data set." The estimation is the §3.3
//! five-split maximum; the winner's *true* error is what gets reported —
//! at 1 % sampling this beats even NN-E on average, because applu's best
//! estimated model is LR-B.

use crate::sampled::SampledRun;
use mlmodels::ModelKind;
use serde::{Deserialize, Serialize};

/// Outcome of the select method at one sampling rate.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SelectOutcome {
    /// Sampling rate.
    pub rate: f64,
    /// Model chosen by the estimated (max) error.
    pub chosen: ModelKind,
    /// True error of the chosen model over the full space.
    pub true_error: f64,
}

/// Apply the select method to a finished sampled run at one rate.
///
/// Panics if the run was produced without error estimation.
pub fn select_method_error(run: &SampledRun, rate: f64) -> SelectOutcome {
    let candidates: Vec<_> = run
        .points
        .iter()
        .filter(|p| (p.rate - rate).abs() < 1e-12)
        .collect();
    assert!(!candidates.is_empty(), "no points at rate {rate}");
    let chosen = candidates
        .iter()
        .min_by(|a, b| {
            let ea = a.estimated.expect("run must estimate errors").max;
            let eb = b.estimated.expect("run must estimate errors").max;
            ea.partial_cmp(&eb).expect("NaN estimate")
        })
        .expect("nonempty");
    SelectOutcome {
        rate,
        chosen: chosen.model,
        true_error: chosen.true_error,
    }
}

/// Select outcomes for every rate in a run.
pub fn select_method_series(run: &SampledRun) -> Vec<SelectOutcome> {
    let mut rates: Vec<f64> = run.points.iter().map(|p| p.rate).collect();
    rates.sort_by(|a, b| a.partial_cmp(b).expect("NaN rate"));
    rates.dedup();
    rates
        .into_iter()
        .map(|r| select_method_error(run, r))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampled::SampledPoint;
    use cpusim::Benchmark;
    use mlmodels::crossval::ErrorEstimate;

    fn fake_run() -> SampledRun {
        let mk = |model, rate, true_error, est_max| SampledPoint {
            model,
            rate,
            sample_size: 46,
            true_error,
            true_error_std: 0.5,
            estimated: Some(ErrorEstimate {
                mean: est_max * 0.8,
                max: est_max,
            }),
        };
        SampledRun {
            benchmark: Benchmark::Applu,
            space_size: 4608,
            range: 1.6,
            variation: 0.15,
            points: vec![
                // At 1%: LR-B estimates best (and is truly better) — the
                // applu case from the paper.
                mk(ModelKind::NnE, 0.01, 1.8, 2.5),
                mk(ModelKind::LrB, 0.01, 1.2, 1.5),
                // At 3%: NN-E wins.
                mk(ModelKind::NnE, 0.03, 0.6, 0.8),
                mk(ModelKind::LrB, 0.03, 1.1, 1.4),
            ],
        }
    }

    #[test]
    fn picks_best_estimated_model() {
        let run = fake_run();
        let s1 = select_method_error(&run, 0.01);
        assert_eq!(s1.chosen, ModelKind::LrB);
        assert_eq!(s1.true_error, 1.2);
        let s3 = select_method_error(&run, 0.03);
        assert_eq!(s3.chosen, ModelKind::NnE);
    }

    #[test]
    fn series_covers_all_rates() {
        let run = fake_run();
        let series = select_method_series(&run);
        assert_eq!(series.len(), 2);
        assert_eq!(series[0].rate, 0.01);
        assert_eq!(series[1].rate, 0.03);
    }

    #[test]
    #[should_panic(expected = "no points at rate")]
    fn missing_rate_panics() {
        let run = fake_run();
        let _ = select_method_error(&run, 0.02);
    }
}
