//! Sampled design-space exploration (Figure 1a, §4.2).
//!
//! The flow: simulate the full design space once (the expensive part the
//! models exist to avoid), then for each sampling rate draw a random
//! training subset, fit each model, estimate its error with the §3.3
//! cross-validation protocol, and score the *true* error of its
//! predictions over the entire space — exactly how Figures 2–6 plot
//! `NN-E / NN-S / LR-B` vs `NN-E-est / NN-S-est / LR-B-est`.

use crate::data::table_from_sweep;
use cpusim::runner::{sweep_design_space, SimOptions, SimResult};
use cpusim::{Benchmark, DesignSpace};
use linalg::dist::{child_seed, permutation, sample_indices, seeded_rng};
use linalg::stats::mape;
use mlmodels::crossval::{estimate_error, ErrorEstimate};
use mlmodels::{train, ModelKind, Table};
use serde::{Deserialize, Serialize};

/// How training points are drawn from the design space.
///
/// The paper samples uniformly at random ("randomly sampling 1% to 5% of
/// the data") and notes the resulting run-to-run wobble; the alternatives
/// exist for the ablation study in `crates/bench`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SamplingStrategy {
    /// Uniform random without replacement (the paper's choice).
    Random,
    /// Every k-th point of the lattice (deterministic, well spread).
    Systematic,
    /// Random within each branch-predictor stratum, proportionally
    /// allocated — guarantees every predictor kind is represented even in
    /// tiny samples.
    StratifiedByPredictor,
}

/// Configuration of a sampled-DSE experiment.
#[derive(Debug, Clone)]
pub struct SampledConfig {
    /// Sampling rates as fractions (the paper sweeps 0.01..=0.05).
    pub sampling_rates: Vec<f64>,
    /// How the training subset is drawn.
    pub strategy: SamplingStrategy,
    /// Models to evaluate (Figures 2–6 use NN-E, NN-S, LR-B).
    pub models: Vec<ModelKind>,
    /// Simulator options for the sweep.
    pub sim: SimOptions,
    /// Master seed (sampling, training, cross-validation).
    pub seed: u64,
    /// Whether to run the §3.3 estimated-error protocol (adds 5 extra
    /// trainings per model and rate).
    pub estimate_errors: bool,
}

impl Default for SampledConfig {
    fn default() -> Self {
        SampledConfig {
            sampling_rates: vec![0.01, 0.02, 0.03, 0.04, 0.05],
            strategy: SamplingStrategy::Random,
            models: ModelKind::FIGURE2_ORDER.to_vec(),
            sim: SimOptions::default(),
            seed: 0xD5E,
            estimate_errors: true,
        }
    }
}

/// One (model, sampling-rate) measurement.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SampledPoint {
    /// Model evaluated.
    pub model: ModelKind,
    /// Sampling rate (fraction of the space used for training).
    pub rate: f64,
    /// Rows in the training sample.
    pub sample_size: usize,
    /// True mean percentage error over the whole design space.
    pub true_error: f64,
    /// Std-dev of the percentage error over the whole space.
    pub true_error_std: f64,
    /// §3.3 estimated error (None when estimation was disabled).
    pub estimated: Option<ErrorEstimate>,
}

/// Full result of one benchmark's sampled-DSE experiment.
#[derive(Debug, Clone)]
pub struct SampledRun {
    /// The benchmark.
    pub benchmark: Benchmark,
    /// Design-space size.
    pub space_size: usize,
    /// §4.1 framework stats of the sweep (range, variation).
    pub range: f64,
    /// Coefficient of variation of cycles.
    pub variation: f64,
    /// All (model, rate) measurements.
    pub points: Vec<SampledPoint>,
}

impl SampledRun {
    /// The measurement for a model at a rate (if present).
    pub fn point(&self, model: ModelKind, rate: f64) -> Option<&SampledPoint> {
        self.points
            .iter()
            .find(|p| p.model == model && (p.rate - rate).abs() < 1e-12)
    }
}

/// Draw `k` training rows from `n` according to the strategy.
fn draw_sample(
    strategy: SamplingStrategy,
    results: &[SimResult],
    n: usize,
    k: usize,
    seed: u64,
) -> Vec<usize> {
    let mut rng = seeded_rng(seed);
    match strategy {
        SamplingStrategy::Random => sample_indices(&mut rng, n, k),
        SamplingStrategy::Systematic => {
            // Evenly spaced with a random phase.
            let stride = n as f64 / k as f64;
            let phase: f64 = rand::Rng::random::<f64>(&mut rng) * stride;
            (0..k)
                .map(|i| ((phase + i as f64 * stride) as usize).min(n - 1))
                .collect()
        }
        SamplingStrategy::StratifiedByPredictor => {
            // Group rows by predictor kind, then sample proportionally.
            let mut strata: std::collections::BTreeMap<usize, Vec<usize>> = Default::default();
            for (i, r) in results.iter().enumerate() {
                strata.entry(r.config.bpred.code()).or_default().push(i);
            }
            let mut rows = Vec::with_capacity(k);
            let n_strata = strata.len();
            for (si, (_, members)) in strata.into_iter().enumerate() {
                let quota = (k * (si + 1)) / n_strata - (k * si) / n_strata;
                let quota = quota.min(members.len());
                let perm = permutation(&mut rng, members.len());
                rows.extend(perm[..quota].iter().map(|&j| members[j]));
            }
            // Top up (rounding) from anywhere.
            while rows.len() < k {
                let cand = rand::Rng::random_range(&mut rng, 0..n);
                if !rows.contains(&cand) {
                    rows.push(cand);
                }
            }
            rows
        }
    }
}

/// Evaluate one trained model's true error over the full space table.
fn true_error(model: &mlmodels::TrainedModel, full: &Table) -> (f64, f64) {
    let preds = model.predict(full);
    mape(&preds, full.target())
}

/// Run the sampled-DSE experiment for one benchmark over a design space.
///
/// `sweep` results may be precomputed (pass `Some`) to share the expensive
/// simulation across experiments.
pub fn run_sampled_dse(
    benchmark: Benchmark,
    space: &DesignSpace,
    cfg: &SampledConfig,
    precomputed: Option<Vec<SimResult>>,
) -> SampledRun {
    let _span = telemetry::span!(
        "sampled_dse",
        benchmark = benchmark.name(),
        rates = cfg.sampling_rates.len(),
        models = cfg.models.len(),
    );
    let results = precomputed.unwrap_or_else(|| sweep_design_space(space, benchmark, &cfg.sim));
    assert_eq!(results.len(), space.len(), "sweep size mismatch");
    let summary = cpusim::runner::summarize_sweep(&results);
    let full = table_from_sweep(&results);
    let n = full.n_rows();

    let mut points = Vec::new();
    let progress = telemetry::Progress::new(
        "sampled_dse",
        (cfg.sampling_rates.len() * cfg.models.len()) as u64,
    );
    for (ri, &rate) in cfg.sampling_rates.iter().enumerate() {
        assert!(
            rate > 0.0 && rate < 1.0,
            "sampling rate out of range: {rate}"
        );
        let _rate_span = telemetry::span!("rate", rate = rate);
        let k = ((n as f64 * rate).round() as usize).max(8);
        let rows = draw_sample(
            cfg.strategy,
            &results,
            n,
            k,
            child_seed(cfg.seed, 0x5A + ri as u64),
        );
        let sample = full.select_rows(&rows);

        for (mi, &kind) in cfg.models.iter().enumerate() {
            let _model_span = telemetry::span!("model", model = kind.abbrev(), rate = rate);
            let train_seed = child_seed(cfg.seed, (ri as u64) << 8 | mi as u64);
            let model = {
                let _train_span = telemetry::span!("fit", model = kind.abbrev(), sample_size = k);
                train(kind, &sample, train_seed)
            };
            let (te, te_std) = true_error(&model, &full);
            let estimated = if cfg.estimate_errors {
                let _est_span = telemetry::span!("estimate_error", model = kind.abbrev());
                Some(estimate_error(kind, &sample, child_seed(train_seed, 0xE5)))
            } else {
                None
            };
            progress.inc();
            points.push(SampledPoint {
                model: kind,
                rate,
                sample_size: k,
                true_error: te,
                true_error_std: te_std,
                estimated,
            });
        }
    }

    SampledRun {
        benchmark,
        space_size: n,
        range: summary.range,
        variation: summary.variation,
        points,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> SampledConfig {
        SampledConfig {
            sampling_rates: vec![0.05, 0.10],
            strategy: SamplingStrategy::Random,
            models: vec![ModelKind::LrB, ModelKind::NnS],
            sim: SimOptions::quick(),
            seed: 7,
            estimate_errors: true,
        }
    }

    fn small_space() -> DesignSpace {
        DesignSpace::from_configs(
            DesignSpace::table1_reduced()
                .configs()
                .iter()
                .copied()
                .step_by(2)
                .collect(),
        )
    }

    #[test]
    fn produces_points_for_every_model_and_rate() {
        let run = run_sampled_dse(Benchmark::Applu, &small_space(), &small_cfg(), None);
        assert_eq!(run.points.len(), 4);
        assert_eq!(run.space_size, 288);
        for p in &run.points {
            assert!(p.true_error.is_finite() && p.true_error >= 0.0);
            assert!(p.sample_size >= 8);
            let est = p.estimated.expect("estimation enabled");
            assert!(est.max >= est.mean);
        }
    }

    #[test]
    fn models_beat_trivial_scaling() {
        // Even small samples should predict far better than a constant
        // predictor, whose MAPE equals the population spread.
        let run = run_sampled_dse(Benchmark::Applu, &small_space(), &small_cfg(), None);
        let worst = run
            .points
            .iter()
            .map(|p| p.true_error)
            .fold(0.0f64, f64::max);
        assert!(
            worst < 100.0 * (run.variation),
            "true error {worst}% should beat the naive spread {}%",
            100.0 * run.variation
        );
    }

    #[test]
    fn precomputed_sweep_matches_internal() {
        let space = small_space();
        let cfg = small_cfg();
        let sweep = sweep_design_space(&space, Benchmark::Mesa, &cfg.sim);
        let a = run_sampled_dse(Benchmark::Mesa, &space, &cfg, Some(sweep));
        let b = run_sampled_dse(Benchmark::Mesa, &space, &cfg, None);
        for (x, y) in a.points.iter().zip(&b.points) {
            assert_eq!(x.true_error, y.true_error);
        }
    }

    #[test]
    fn point_lookup_works() {
        let run = run_sampled_dse(Benchmark::Applu, &small_space(), &small_cfg(), None);
        let p = run.point(ModelKind::LrB, 0.05).expect("point exists");
        assert_eq!(p.model, ModelKind::LrB);
        assert!(run.point(ModelKind::NnE, 0.05).is_none());
    }
}
