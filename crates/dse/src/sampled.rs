//! Sampled design-space exploration (Figure 1a, §4.2).
//!
//! The flow: simulate the full design space once (the expensive part the
//! models exist to avoid), then for each sampling rate draw a random
//! training subset, fit each model, estimate its error with the §3.3
//! cross-validation protocol, and score the *true* error of its
//! predictions over the entire space — exactly how Figures 2–6 plot
//! `NN-E / NN-S / LR-B` vs `NN-E-est / NN-S-est / LR-B-est`.

use std::collections::HashMap;

use crate::data::try_table_from_sweep;
use cpusim::runner::{
    sweep_header, sweep_header_expectations, try_sweep_design_space, SimOptions, SimResult,
};
use cpusim::{Benchmark, DesignSpace};
use fault::checkpoint::{self, CheckpointWriter};
use fault::{Error, Result};
use linalg::dist::{child_seed, permutation, sample_indices, seeded_rng};
use linalg::stats::mape;
use mlmodels::crossval::{try_estimate_error, ErrorEstimate};
use mlmodels::{try_train, ModelKind, Table};
use serde::{Deserialize, Serialize};
use telemetry::json::JsonObject;

/// How training points are drawn from the design space.
///
/// The paper samples uniformly at random ("randomly sampling 1% to 5% of
/// the data") and notes the resulting run-to-run wobble; the alternatives
/// exist for the ablation study in `crates/bench`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SamplingStrategy {
    /// Uniform random without replacement (the paper's choice).
    Random,
    /// Every k-th point of the lattice (deterministic, well spread).
    Systematic,
    /// Random within each branch-predictor stratum, proportionally
    /// allocated — guarantees every predictor kind is represented even in
    /// tiny samples.
    StratifiedByPredictor,
}

/// Configuration of a sampled-DSE experiment.
#[derive(Debug, Clone)]
pub struct SampledConfig {
    /// Sampling rates as fractions (the paper sweeps 0.01..=0.05).
    pub sampling_rates: Vec<f64>,
    /// How the training subset is drawn.
    pub strategy: SamplingStrategy,
    /// Models to evaluate (Figures 2–6 use NN-E, NN-S, LR-B).
    pub models: Vec<ModelKind>,
    /// Simulator options for the sweep.
    pub sim: SimOptions,
    /// Master seed (sampling, training, cross-validation).
    pub seed: u64,
    /// Whether to run the §3.3 estimated-error protocol (adds 5 extra
    /// trainings per model and rate).
    pub estimate_errors: bool,
    /// Directory to export every freshly trained model into as a
    /// `.ppmodel` artifact (`None` disables export; fits restored from a
    /// checkpoint are not re-exported — their models were never rebuilt).
    pub export_models: Option<String>,
}

impl Default for SampledConfig {
    fn default() -> Self {
        SampledConfig {
            sampling_rates: vec![0.01, 0.02, 0.03, 0.04, 0.05],
            strategy: SamplingStrategy::Random,
            models: ModelKind::FIGURE2_ORDER.to_vec(),
            sim: SimOptions::default(),
            seed: 0xD5E,
            estimate_errors: true,
            export_models: None,
        }
    }
}

/// One (model, sampling-rate) measurement.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SampledPoint {
    /// Model evaluated.
    pub model: ModelKind,
    /// Sampling rate (fraction of the space used for training).
    pub rate: f64,
    /// Rows in the training sample.
    pub sample_size: usize,
    /// True mean percentage error over the whole design space.
    pub true_error: f64,
    /// Std-dev of the percentage error over the whole space.
    pub true_error_std: f64,
    /// §3.3 estimated error (None when estimation was disabled).
    pub estimated: Option<ErrorEstimate>,
}

/// A (model, rate) fit that failed and was dropped from the candidate
/// set — the §3.3 *select* protocol degrades gracefully instead of
/// poisoning the whole run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DroppedFit {
    /// Model that failed.
    pub model: ModelKind,
    /// Sampling rate it failed at.
    pub rate: f64,
    /// Stable failure tag (`fault::Error::kind`).
    pub reason: String,
    /// Full human-readable error.
    pub detail: String,
}

/// Full result of one benchmark's sampled-DSE experiment.
#[derive(Debug, Clone)]
pub struct SampledRun {
    /// The benchmark.
    pub benchmark: Benchmark,
    /// Design-space size.
    pub space_size: usize,
    /// §4.1 framework stats of the sweep (range, variation).
    pub range: f64,
    /// Coefficient of variation of cycles.
    pub variation: f64,
    /// All (model, rate) measurements.
    pub points: Vec<SampledPoint>,
    /// Fits that failed, with their recorded reasons.
    pub dropped: Vec<DroppedFit>,
}

impl SampledRun {
    /// The measurement for a model at a rate (if present).
    pub fn point(&self, model: ModelKind, rate: f64) -> Option<&SampledPoint> {
        self.points
            .iter()
            .find(|p| p.model == model && (p.rate - rate).abs() < 1e-12)
    }
}

/// Draw `k` training rows from `n` according to the strategy.
///
/// `k` is clamped to `n` (a rounded-up sample can exceed a tiny table)
/// and an empty population is a typed [`Error::InvalidInput`] instead of
/// an underflow panic in the stride arithmetic below.
pub fn draw_sample(
    strategy: SamplingStrategy,
    results: &[SimResult],
    n: usize,
    k: usize,
    seed: u64,
) -> Result<Vec<usize>> {
    if n == 0 {
        return Err(Error::invalid(
            "cannot draw a training sample from an empty design space",
        ));
    }
    let k = k.min(n);
    let mut rng = seeded_rng(seed);
    Ok(match strategy {
        SamplingStrategy::Random => sample_indices(&mut rng, n, k),
        SamplingStrategy::Systematic => {
            // Evenly spaced with a random phase. The final `.min(n - 1)`
            // clamp can fold the last strides onto the same row; dedup so
            // a fold never carries duplicate training rows (the indices
            // are non-decreasing by construction).
            let stride = n as f64 / k as f64;
            let phase: f64 = rand::Rng::random::<f64>(&mut rng) * stride;
            let mut rows: Vec<usize> = (0..k)
                .map(|i| ((phase + i as f64 * stride) as usize).min(n - 1))
                .collect();
            rows.dedup();
            rows
        }
        SamplingStrategy::StratifiedByPredictor => {
            // Group rows by predictor kind, then sample proportionally.
            let mut strata: std::collections::BTreeMap<usize, Vec<usize>> = Default::default();
            for (i, r) in results.iter().enumerate() {
                strata.entry(r.config.bpred.code()).or_default().push(i);
            }
            let mut rows = Vec::with_capacity(k);
            let n_strata = strata.len();
            for (si, (_, members)) in strata.into_iter().enumerate() {
                let quota = (k * (si + 1)) / n_strata - (k * si) / n_strata;
                let quota = quota.min(members.len());
                let perm = permutation(&mut rng, members.len());
                rows.extend(perm[..quota].iter().map(|&j| members[j]));
            }
            // Top up (rounding) from anywhere.
            while rows.len() < k {
                let cand = rand::Rng::random_range(&mut rng, 0..n);
                if !rows.contains(&cand) {
                    rows.push(cand);
                }
            }
            rows
        }
    })
}

/// Evaluate one trained model's true error over the full space table.
fn true_error(model: &mlmodels::TrainedModel, full: &Table) -> (f64, f64) {
    let preds = model.predict(full);
    mape(&preds, full.target())
}

/// Run the sampled-DSE experiment for one benchmark over a design space.
///
/// `sweep` results may be precomputed (pass `Some`) to share the expensive
/// simulation across experiments.
///
/// Infallible-signature wrapper over [`try_run_sampled_dse`] without a
/// checkpoint; panics on its error paths (degenerate sweeps, invalid
/// rates). Pipeline code uses the `try_` variant.
pub fn run_sampled_dse(
    benchmark: Benchmark,
    space: &DesignSpace,
    cfg: &SampledConfig,
    precomputed: Option<Vec<SimResult>>,
) -> SampledRun {
    match try_run_sampled_dse(benchmark, space, cfg, precomputed, None) {
        Ok(run) => run,
        Err(e) => panic!("sampled DSE on {}: {e}", benchmark.name()),
    }
}

/// A restored per-fit checkpoint record.
enum RestoredFit {
    Fit(SampledPoint),
    Drop(DroppedFit),
}

/// Parse the `"fit"` / `"drop"` records of a shared checkpoint file into
/// a `(rate index, model)`-keyed map. Later records win, mirroring the
/// sim-record dedupe in the sweep reader.
fn restore_fits(
    path: &str,
    records: &[telemetry::json::Value],
    cfg: &SampledConfig,
) -> Result<HashMap<(usize, ModelKind), RestoredFit>> {
    let mut restored = HashMap::new();
    for rec in records {
        let ty = checkpoint::str_field(path, rec, "type")?;
        if ty != "fit" && ty != "drop" {
            continue;
        }
        let ri = checkpoint::u64_field(path, rec, "rate_idx")? as usize;
        if ri >= cfg.sampling_rates.len() {
            return Err(Error::checkpoint(
                path,
                format!(
                    "{ty} record rate_idx {ri} outside the {} configured rates",
                    cfg.sampling_rates.len()
                ),
            ));
        }
        let abbrev = checkpoint::str_field(path, rec, "model")?;
        let kind = ModelKind::from_abbrev(abbrev)
            .ok_or_else(|| Error::checkpoint(path, format!("unknown model '{abbrev}'")))?;
        let rate = checkpoint::f64_field(path, rec, "rate")?;
        if (rate - cfg.sampling_rates[ri]).abs() > 1e-12 {
            return Err(Error::checkpoint(
                path,
                format!(
                    "{ty} record rate {rate} does not match configured rate {} at index {ri}",
                    cfg.sampling_rates[ri]
                ),
            ));
        }
        let value = if ty == "fit" {
            RestoredFit::Fit(SampledPoint {
                model: kind,
                rate,
                sample_size: checkpoint::u64_field(path, rec, "sample_size")? as usize,
                true_error: checkpoint::f64_field(path, rec, "true_error")?,
                true_error_std: checkpoint::f64_field(path, rec, "true_error_std")?,
                estimated: match rec.get("est_max") {
                    Some(_) => Some(ErrorEstimate {
                        mean: checkpoint::f64_field(path, rec, "est_mean")?,
                        max: checkpoint::f64_field(path, rec, "est_max")?,
                    }),
                    None => None,
                },
            })
        } else {
            RestoredFit::Drop(DroppedFit {
                model: kind,
                rate,
                reason: checkpoint::str_field(path, rec, "reason")?.to_string(),
                detail: checkpoint::str_field(path, rec, "detail")?.to_string(),
            })
        };
        restored.insert((ri, kind), value);
    }
    Ok(restored)
}

/// Render a completed fit as a checkpoint line.
fn fit_line(ri: usize, p: &SampledPoint) -> String {
    let mut obj = JsonObject::new()
        .str("type", "fit")
        .uint("rate_idx", ri as u64)
        .str("model", p.model.abbrev())
        .num("rate", p.rate)
        .uint("sample_size", p.sample_size as u64)
        .num("true_error", p.true_error)
        .num("true_error_std", p.true_error_std);
    if let Some(est) = &p.estimated {
        obj = obj.num("est_mean", est.mean).num("est_max", est.max);
    }
    obj.finish()
}

/// Render a dropped fit as a checkpoint line.
fn drop_line(ri: usize, d: &DroppedFit) -> String {
    JsonObject::new()
        .str("type", "drop")
        .uint("rate_idx", ri as u64)
        .str("model", d.model.abbrev())
        .num("rate", d.rate)
        .str("reason", &d.reason)
        .str("detail", &d.detail)
        .finish()
}

/// Fallible, checkpointable sampled-DSE experiment.
///
/// Differences from the historical panicking path, none of which change
/// the no-fault results:
///
/// * Sweep rows with non-finite cycles are dropped (with a telemetry
///   counter) before the table is built; fewer than 8 usable rows is
///   [`Error::DegenerateData`].
/// * A model whose fit fails (singular design, divergence surviving all
///   retries, degenerate sample) is recorded in [`SampledRun::dropped`]
///   with its reason instead of aborting the run — the §4.4 *select*
///   protocol then simply never chooses it.
/// * A failed §3.3 error estimation leaves `estimated: None` on an
///   otherwise valid point.
/// * With `checkpoint: Some(path)`, the sweep and every completed fit are
///   appended to one JSONL file; on restart, completed work is restored
///   and only the remainder runs. The file must belong to the same
///   (benchmark, space, sim options) run.
pub fn try_run_sampled_dse(
    benchmark: Benchmark,
    space: &DesignSpace,
    cfg: &SampledConfig,
    precomputed: Option<Vec<SimResult>>,
    checkpoint: Option<&str>,
) -> Result<SampledRun> {
    let _span = telemetry::span!(
        "sampled_dse",
        benchmark = benchmark.name(),
        rates = cfg.sampling_rates.len(),
        models = cfg.models.len(),
    );
    for &rate in &cfg.sampling_rates {
        if !(rate > 0.0 && rate < 1.0) {
            return Err(Error::invalid(format!(
                "sampling rate out of range: {rate}"
            )));
        }
    }

    // Restore prior fit records before the sweep appends to the file.
    let mut restored = HashMap::new();
    let mut prior_records = 0usize;
    if let Some(path) = checkpoint {
        let records = checkpoint::load_records(path)?;
        if let Some(header) = records.first() {
            checkpoint::check_header(
                path,
                header,
                &sweep_header_expectations(benchmark, space, &cfg.sim),
            )?;
            restored = restore_fits(path, &records[1..], cfg)?;
            if !restored.is_empty() {
                telemetry::point!("sampled/resume", fits = restored.len());
            }
        }
        prior_records = records.len();
    }

    let had_precomputed = precomputed.is_some();
    let results = match precomputed {
        Some(r) => {
            if r.len() != space.len() {
                return Err(Error::invalid(format!(
                    "precomputed sweep has {} results for a {}-point space",
                    r.len(),
                    space.len()
                )));
            }
            r
        }
        None => try_sweep_design_space(space, benchmark, &cfg.sim, checkpoint)?.results,
    };
    let writer = match checkpoint {
        Some(path) => {
            let w = CheckpointWriter::append(path)?;
            // The sweep writes the header when it owns an empty file; with
            // precomputed results nobody has yet, so the fit records need one.
            if prior_records == 0 && had_precomputed {
                w.append_record(&sweep_header(benchmark, space, &cfg.sim))?;
            }
            Some(w)
        }
        None => None,
    };

    let bad_rows = results.iter().filter(|r| !r.cycles.is_finite()).count();
    if bad_rows > 0 {
        telemetry::counter_add("dse/dropped_rows", bad_rows as u64);
        telemetry::point!("sampled/dropped_rows", rows = bad_rows);
    }
    let results: Vec<SimResult> = results
        .into_iter()
        .filter(|r| r.cycles.is_finite())
        .collect();
    if results.len() < 8 {
        return Err(Error::degenerate(format!(
            "sweep of {} left {} finite-cycle rows; need at least 8 to fit anything",
            benchmark.name(),
            results.len()
        )));
    }
    let summary = cpusim::runner::summarize_sweep(&results);
    let full = try_table_from_sweep(&results)?;
    let n = full.n_rows();
    if let Some(dir) = &cfg.export_models {
        std::fs::create_dir_all(dir).map_err(|e| Error::io(dir.clone(), e))?;
    }

    let mut points = Vec::new();
    let mut dropped = Vec::new();
    let progress = telemetry::Progress::new(
        "sampled_dse",
        (cfg.sampling_rates.len() * cfg.models.len()) as u64,
    );
    for (ri, &rate) in cfg.sampling_rates.iter().enumerate() {
        let _rate_span = telemetry::span!("rate", rate = rate);
        // `.max(8)` keeps tiny rates trainable; `.min(n)` keeps tiny
        // tables from being over-indexed when the floor exceeds them.
        let k = ((n as f64 * rate).round() as usize).max(8).min(n);
        let rows = draw_sample(
            cfg.strategy,
            &results,
            n,
            k,
            child_seed(cfg.seed, 0x5A + ri as u64),
        )?;
        let sample = full.select_rows(&rows);

        for (mi, &kind) in cfg.models.iter().enumerate() {
            if let Some(prior) = restored.get(&(ri, kind)) {
                match prior {
                    RestoredFit::Fit(p) => points.push(p.clone()),
                    RestoredFit::Drop(d) => dropped.push(d.clone()),
                }
                progress.inc();
                continue;
            }
            let _model_span = telemetry::span!("model", model = kind.abbrev(), rate = rate);
            let train_seed = child_seed(cfg.seed, (ri as u64) << 8 | mi as u64);
            let fit = {
                let _train_span = telemetry::span!("fit", model = kind.abbrev(), sample_size = k);
                try_train(kind, &sample, train_seed)
            };
            match fit {
                Err(e) => {
                    telemetry::point!("sampled/drop_fit", model = kind.abbrev(), reason = e.kind());
                    let d = DroppedFit {
                        model: kind,
                        rate,
                        reason: e.kind().to_string(),
                        detail: e.to_string(),
                    };
                    if let Some(w) = &writer {
                        w.append_record(&drop_line(ri, &d))?;
                    }
                    dropped.push(d);
                }
                Ok(model) => {
                    if let Some(dir) = &cfg.export_models {
                        let path =
                            format!("{dir}/{}_{}_r{ri}.ppmodel", benchmark.name(), kind.abbrev());
                        mlmodels::ModelArtifact::from_training(model.clone(), &sample)
                            .save(&path)?;
                        telemetry::point!("sampled/export", model = kind.abbrev(), path = path);
                    }
                    let (te, te_std) = true_error(&model, &full);
                    let estimated = if cfg.estimate_errors {
                        let _est_span = telemetry::span!("estimate_error", model = kind.abbrev());
                        match try_estimate_error(kind, &sample, child_seed(train_seed, 0xE5)) {
                            Ok(est) => Some(est),
                            Err(e) => {
                                telemetry::point!(
                                    "sampled/estimate_failed",
                                    model = kind.abbrev(),
                                    reason = e.kind()
                                );
                                None
                            }
                        }
                    } else {
                        None
                    };
                    let point = SampledPoint {
                        model: kind,
                        rate,
                        sample_size: sample.n_rows(),
                        true_error: te,
                        true_error_std: te_std,
                        estimated,
                    };
                    if let Some(w) = &writer {
                        // A non-finite error would round-trip as JSON null;
                        // re-fit on resume instead of checkpointing it.
                        if te.is_finite() && te_std.is_finite() {
                            w.append_record(&fit_line(ri, &point))?;
                        } else {
                            telemetry::point!("sampled/skip_checkpoint", model = kind.abbrev());
                        }
                    }
                    points.push(point);
                }
            }
            progress.inc();
        }
    }

    Ok(SampledRun {
        benchmark,
        space_size: n,
        range: summary.range,
        variation: summary.variation,
        points,
        dropped,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpusim::runner::sweep_design_space;

    fn small_cfg() -> SampledConfig {
        SampledConfig {
            sampling_rates: vec![0.05, 0.10],
            strategy: SamplingStrategy::Random,
            models: vec![ModelKind::LrB, ModelKind::NnS],
            sim: SimOptions::quick(),
            seed: 7,
            estimate_errors: true,
            export_models: None,
        }
    }

    fn small_space() -> DesignSpace {
        DesignSpace::from_configs(
            DesignSpace::table1_reduced()
                .configs()
                .iter()
                .copied()
                .step_by(2)
                .collect(),
        )
    }

    #[test]
    fn produces_points_for_every_model_and_rate() {
        let run = run_sampled_dse(Benchmark::Applu, &small_space(), &small_cfg(), None);
        assert_eq!(run.points.len(), 4);
        assert_eq!(run.space_size, 288);
        for p in &run.points {
            assert!(p.true_error.is_finite() && p.true_error >= 0.0);
            assert!(p.sample_size >= 8);
            let est = p.estimated.expect("estimation enabled");
            assert!(est.max >= est.mean);
        }
    }

    #[test]
    fn models_beat_trivial_scaling() {
        // Even small samples should predict far better than a constant
        // predictor, whose MAPE equals the population spread.
        let run = run_sampled_dse(Benchmark::Applu, &small_space(), &small_cfg(), None);
        let worst = run
            .points
            .iter()
            .map(|p| p.true_error)
            .fold(0.0f64, f64::max);
        assert!(
            worst < 100.0 * (run.variation),
            "true error {worst}% should beat the naive spread {}%",
            100.0 * run.variation
        );
    }

    #[test]
    fn precomputed_sweep_matches_internal() {
        let space = small_space();
        let cfg = small_cfg();
        let sweep = sweep_design_space(&space, Benchmark::Mesa, &cfg.sim);
        let a = run_sampled_dse(Benchmark::Mesa, &space, &cfg, Some(sweep));
        let b = run_sampled_dse(Benchmark::Mesa, &space, &cfg, None);
        for (x, y) in a.points.iter().zip(&b.points) {
            assert_eq!(x.true_error, y.true_error);
        }
    }

    #[test]
    fn point_lookup_works() {
        let run = run_sampled_dse(Benchmark::Applu, &small_space(), &small_cfg(), None);
        let p = run.point(ModelKind::LrB, 0.05).expect("point exists");
        assert_eq!(p.model, ModelKind::LrB);
        assert!(run.point(ModelKind::NnE, 0.05).is_none());
    }

    fn tmp_checkpoint(name: &str) -> String {
        let dir = std::env::temp_dir().join("perfpredict-sampled-tests");
        std::fs::create_dir_all(&dir).expect("create tmp dir");
        let path = dir.join(name);
        let _ = std::fs::remove_file(&path);
        path.to_string_lossy().into_owned()
    }

    #[test]
    fn checkpointed_run_restores_completed_fits() {
        let space = small_space();
        let cfg = small_cfg();
        let path = tmp_checkpoint("fits.jsonl");
        let fresh = try_run_sampled_dse(Benchmark::Applu, &space, &cfg, None, Some(&path))
            .expect("first run");
        let lines_after_first = std::fs::read_to_string(&path)
            .expect("read")
            .lines()
            .count();
        // Header + 288 sims + 4 fits.
        assert_eq!(lines_after_first, 1 + 288 + 4);

        let resumed =
            try_run_sampled_dse(Benchmark::Applu, &space, &cfg, None, Some(&path)).expect("resume");
        assert_eq!(resumed.points.len(), fresh.points.len());
        for (a, b) in fresh.points.iter().zip(&resumed.points) {
            assert_eq!(a.model, b.model);
            assert_eq!(a.true_error, b.true_error);
            assert_eq!(a.estimated.map(|e| e.max), b.estimated.map(|e| e.max));
        }
        // Fully restored: the resume appended nothing.
        let lines_after_second = std::fs::read_to_string(&path)
            .expect("read")
            .lines()
            .count();
        assert_eq!(lines_after_first, lines_after_second);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn partial_fit_checkpoint_resumes_to_identical_results() {
        let space = small_space();
        let cfg = small_cfg();
        let path = tmp_checkpoint("fits-partial.jsonl");
        let fresh = try_run_sampled_dse(Benchmark::Applu, &space, &cfg, None, Some(&path))
            .expect("first run");
        // Keep the header, all sims, and the first two fit records.
        let text = std::fs::read_to_string(&path).expect("read");
        let keep: Vec<&str> = text.lines().take(1 + 288 + 2).collect();
        std::fs::write(&path, format!("{}\n", keep.join("\n"))).expect("truncate");

        let resumed =
            try_run_sampled_dse(Benchmark::Applu, &space, &cfg, None, Some(&path)).expect("resume");
        for (a, b) in fresh.points.iter().zip(&resumed.points) {
            assert_eq!(
                a.true_error,
                b.true_error,
                "{}@{}",
                a.model.abbrev(),
                a.rate
            );
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn precomputed_checkpoint_gets_a_header() {
        let space = small_space();
        let cfg = small_cfg();
        let path = tmp_checkpoint("fits-precomputed.jsonl");
        let sweep = sweep_design_space(&space, Benchmark::Applu, &cfg.sim);
        try_run_sampled_dse(
            Benchmark::Applu,
            &space,
            &cfg,
            Some(sweep.clone()),
            Some(&path),
        )
        .expect("precomputed run");
        let text = std::fs::read_to_string(&path).expect("read");
        assert!(text.lines().next().expect("header").contains("\"header\""));
        // Resume also works with the precomputed sweep.
        let resumed = try_run_sampled_dse(Benchmark::Applu, &space, &cfg, Some(sweep), Some(&path))
            .expect("resume");
        assert_eq!(resumed.points.len(), 4);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn sample_size_is_clamped_to_tiny_tables() {
        // 40 usable rows: a 5 % draw wants 2 rows and floors to 8; a 97 %
        // draw rounds to 39. Neither may exceed n on a tiny table.
        let space =
            DesignSpace::from_configs(DesignSpace::table1_reduced().configs()[..40].to_vec());
        let cfg = SampledConfig {
            sampling_rates: vec![0.05, 0.97],
            models: vec![ModelKind::LrE],
            estimate_errors: false,
            ..small_cfg()
        };
        let run = try_run_sampled_dse(Benchmark::Applu, &space, &cfg, None, None)
            .expect("tiny table must not over-index");
        assert_eq!(run.space_size, 40);
        assert!(!run.points.is_empty(), "dropped: {:?}", run.dropped);
        for p in &run.points {
            assert!((8..=40).contains(&p.sample_size), "{p:?}");
        }
    }

    #[test]
    fn draw_sample_rejects_empty_population() {
        let err =
            draw_sample(SamplingStrategy::Systematic, &[], 0, 8, 1).expect_err("empty population");
        assert_eq!(err.kind(), "invalid");
    }

    #[test]
    fn systematic_indices_are_unique_and_in_range() {
        for (n, k) in [(10usize, 10usize), (7, 20), (288, 15), (9, 8)] {
            let rows = draw_sample(SamplingStrategy::Systematic, &[], n, k, 99).expect("non-empty");
            assert!(rows.iter().all(|&r| r < n), "n={n} k={k}: {rows:?}");
            let mut uniq = rows.clone();
            uniq.sort_unstable();
            uniq.dedup();
            assert_eq!(
                uniq.len(),
                rows.len(),
                "n={n} k={k}: duplicates in {rows:?}"
            );
        }
    }

    #[test]
    fn export_models_writes_loadable_artifacts() {
        let dir = std::env::temp_dir().join("perfpredict-sampled-export");
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = SampledConfig {
            sampling_rates: vec![0.05],
            models: vec![ModelKind::LrB],
            estimate_errors: false,
            export_models: Some(dir.to_string_lossy().into_owned()),
            ..small_cfg()
        };
        let run = try_run_sampled_dse(Benchmark::Applu, &small_space(), &cfg, None, None)
            .expect("run with export");
        assert_eq!(run.points.len(), 1);
        let path = dir.join("applu_LR-B_r0.ppmodel");
        let art = mlmodels::ModelArtifact::load(&path.to_string_lossy()).expect("loadable");
        assert_eq!(art.model.kind, ModelKind::LrB);
        assert_eq!(art.schema.columns.len(), 24, "Table-1 parameter count");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn invalid_rate_is_a_typed_error() {
        let cfg = SampledConfig {
            sampling_rates: vec![1.5],
            ..small_cfg()
        };
        let err = try_run_sampled_dse(Benchmark::Applu, &small_space(), &cfg, None, None)
            .expect_err("rate out of range");
        assert_eq!(err.kind(), "invalid");
    }

    #[test]
    fn nan_cycles_are_dropped_not_fatal() {
        let space = small_space();
        let cfg = small_cfg();
        let mut sweep = sweep_design_space(&space, Benchmark::Applu, &cfg.sim);
        for r in sweep.iter_mut().take(20) {
            r.cycles = f64::NAN;
        }
        let run = try_run_sampled_dse(Benchmark::Applu, &space, &cfg, Some(sweep), None)
            .expect("run survives NaN rows");
        assert_eq!(run.space_size, 288 - 20);
        assert_eq!(run.points.len(), 4);
    }

    #[test]
    fn all_nan_sweep_is_degenerate() {
        let space = small_space();
        let cfg = small_cfg();
        let mut sweep = sweep_design_space(&space, Benchmark::Applu, &cfg.sim);
        for r in sweep.iter_mut() {
            r.cycles = f64::NAN;
        }
        let err = try_run_sampled_dse(Benchmark::Applu, &space, &cfg, Some(sweep), None)
            .expect_err("nothing usable");
        assert_eq!(err.kind(), "degenerate");
    }
}
