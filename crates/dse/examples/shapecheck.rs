//! Shape validation: paper's headline orderings on reduced spaces.
use cpusim::{Benchmark, DesignSpace, SimOptions};
use dse::{run_chronological, run_sampled_dse, ChronoConfig, SampledConfig, SamplingStrategy};
use mlmodels::ModelKind;
use specdata::ProcessorFamily;
use std::time::Instant;

fn main() {
    // Sampled DSE on a 1152-config subspace, 2% and 5% sampling.
    let full = DesignSpace::table1();
    let sub = DesignSpace::from_configs(full.configs().iter().copied().step_by(4).collect());
    for b in [Benchmark::Applu, Benchmark::Mcf] {
        let t0 = Instant::now();
        let cfg = SampledConfig {
            sampling_rates: vec![0.02, 0.05],
            strategy: SamplingStrategy::Random,
            models: vec![ModelKind::NnE, ModelKind::NnS, ModelKind::LrB],
            sim: SimOptions {
                instructions: 60_000,
                ..Default::default()
            },
            seed: 11,
            estimate_errors: true,
            export_models: None,
        };
        let run = run_sampled_dse(b, &sub, &cfg, None);
        println!(
            "== {} (range {:.2}) in {:.0?}",
            b.name(),
            run.range,
            t0.elapsed()
        );
        for p in &run.points {
            println!(
                "  {} rate {:.0}% n={} true {:.2}% est(max) {:.2}%",
                p.model.abbrev(),
                p.rate * 100.0,
                p.sample_size,
                p.true_error,
                p.estimated.map(|e| e.max).unwrap_or(f64::NAN)
            );
        }
    }
    // Chronological on three families.
    for fam in [
        ProcessorFamily::Xeon,
        ProcessorFamily::Opteron2,
        ProcessorFamily::Opteron8,
    ] {
        let cfg = ChronoConfig::default();
        let t0 = Instant::now();
        let r = run_chronological(fam, &cfg);
        println!(
            "== {} (train {} test {}) in {:.0?}",
            fam.name(),
            r.n_train,
            r.n_test,
            t0.elapsed()
        );
        for p in &r.points {
            println!(
                "  {} {:.2}% ± {:.2}",
                p.model.abbrev(),
                p.error_mean,
                p.error_std
            );
        }
    }
}
