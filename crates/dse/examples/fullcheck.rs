//! Full-space sampled-DSE check at the paper's rates.
use cpusim::{Benchmark, DesignSpace, SimOptions};
use dse::{run_sampled_dse, SampledConfig, SamplingStrategy};
use mlmodels::ModelKind;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let bench = args.get(1).map(|s| s.as_str()).unwrap_or("applu");
    let insts: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(100_000);
    let b = Benchmark::from_name(bench).expect("benchmark name");
    let space = DesignSpace::table1();
    let t0 = Instant::now();
    let cfg = SampledConfig {
        sampling_rates: vec![0.01, 0.03, 0.05],
        strategy: SamplingStrategy::Random,
        models: vec![ModelKind::NnE, ModelKind::NnS, ModelKind::LrB],
        sim: SimOptions {
            instructions: insts,
            ..Default::default()
        },
        seed: 11,
        estimate_errors: true,
        export_models: None,
    };
    let run = run_sampled_dse(b, &space, &cfg, None);
    println!(
        "== {} range {:.2} var {:.3} ({} cfgs in {:.0?})",
        b.name(),
        run.range,
        run.variation,
        run.space_size,
        t0.elapsed()
    );
    for p in &run.points {
        println!(
            "  {} rate {:.0}% n={} true {:.2}% est(max) {:.2}%",
            p.model.abbrev(),
            p.rate * 100.0,
            p.sample_size,
            p.true_error,
            p.estimated.map(|e| e.max).unwrap_or(f64::NAN)
        );
    }
}
