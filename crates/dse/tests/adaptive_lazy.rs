//! Acceptance tests for the lazily-simulating adaptive explorer on a
//! generator-defined space of millions of points.
//!
//! The contract under test (ISSUE 9): a generated space of ≥ 10^6
//! configurations enumerates lazily — no full materialization — and an
//! adaptive run on it simulates exactly `initial + batch × rounds`
//! configurations, counted by the oracle's simulation counter.

use cpusim::runner::SimOptions;
use cpusim::{DesignSpace, SpaceSpec};
use dse::adaptive::EvalMode;
use dse::{try_run_adaptive, AdaptiveConfig};
use mlmodels::ModelKind;

fn mega_space() -> DesignSpace {
    DesignSpace::try_generate(&SpaceSpec::mega()).expect("mega spec is valid")
}

fn lazy_cfg(seed: u64) -> AdaptiveConfig {
    AdaptiveConfig {
        initial: 8,
        batch: 4,
        rounds: 2,
        committee: 2,
        pool: 64,
        eval: EvalMode::AcquisitionOnly,
        member: ModelKind::NnS,
        final_model: ModelKind::NnS,
        sim: SimOptions::quick(),
        seed,
    }
}

fn tmp(name: &str) -> String {
    let dir = std::env::temp_dir().join("perfpredict-adaptive-lazy");
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let path = dir.join(name);
    let _ = std::fs::remove_file(&path);
    path.to_string_lossy().into_owned()
}

#[test]
fn mega_space_run_simulates_only_the_budget_and_stays_lazy() {
    let space = mega_space();
    assert!(
        space.len() > 1_000_000,
        "the acceptance space must exceed a million points"
    );
    let cfg = lazy_cfg(41);
    let r = try_run_adaptive(cpusim::Benchmark::Mcf, &space, &cfg, None, None)
        .expect("lazy adaptive run succeeds");
    assert_eq!(
        r.simulated,
        cfg.initial + cfg.batch * cfg.rounds,
        "acquisition-only runs simulate exactly the budget"
    );
    assert_eq!(r.trajectory.len(), cfg.rounds + 1);
    assert_eq!(
        r.trajectory.last().expect("non-empty trajectory").budget,
        cfg.initial + cfg.batch * cfg.rounds
    );
    assert!(
        !space.is_materialized(),
        "the 2.2M-point lattice must never be materialized"
    );
}

#[test]
fn exhaustive_scoring_on_a_mega_space_is_rejected_up_front() {
    let space = mega_space();
    let cfg = AdaptiveConfig {
        pool: 0, // would score 2.2M candidates per round
        eval: EvalMode::AcquisitionOnly,
        sim: SimOptions::quick(),
        ..lazy_cfg(5)
    };
    let e = try_run_adaptive(cpusim::Benchmark::Gcc, &space, &cfg, None, None)
        .expect_err("uncapped scoring on a mega space must be rejected");
    assert_eq!(e.kind(), "invalid");
    assert!(e.to_string().contains("pool"), "{e}");
    assert!(!space.is_materialized(), "validation must not materialize");
}

#[test]
fn adaptive_ledger_resume_restores_every_label() {
    let space = mega_space();
    let cfg = lazy_cfg(17);
    let path = tmp("adaptive-ledger.jsonl");

    let first = try_run_adaptive(cpusim::Benchmark::Mesa, &space, &cfg, None, Some(&path))
        .expect("first run");
    assert_eq!(first.simulated, cfg.initial + cfg.batch * cfg.rounds);

    // The run is deterministic per seed, so a rerun over the same ledger
    // requests exactly the indices already recorded: zero fresh sims.
    let second = try_run_adaptive(cpusim::Benchmark::Mesa, &space, &cfg, None, Some(&path))
        .expect("resumed run");
    assert_eq!(second.simulated, 0, "every label restores from the ledger");
    let a: Vec<usize> = first.trajectory.iter().map(|p| p.budget).collect();
    let b: Vec<usize> = second.trajectory.iter().map(|p| p.budget).collect();
    assert_eq!(a, b, "resumed trajectory must match the fresh one");
    let _ = std::fs::remove_file(&path);
}
