//! Golden-shape test for the sampled-DSE run manifest.
//!
//! Runs a miniature sampled experiment with the JSONL sink installed and
//! asserts the manifest parses line-by-line and contains every stage the
//! observability layer promises: meta header, sweep/materialize spans,
//! per-model fit (train), estimate and predict spans, progress ticks,
//! simulator counter rollups, and the closing summary. Own test binary
//! because telemetry is process-global.

use std::collections::BTreeSet;
use std::path::PathBuf;

use cpusim::runner::SimOptions;
use cpusim::{Benchmark, DesignSpace};
use dse::sampled::{run_sampled_dse, SampledConfig, SamplingStrategy};
use mlmodels::ModelKind;
use telemetry::json::{parse, Value};

fn manifest_path() -> PathBuf {
    std::env::temp_dir().join(format!("dse_manifest_golden_{}.jsonl", std::process::id()))
}

#[test]
fn sampled_run_manifest_has_all_expected_stages() {
    let path = manifest_path();
    let run = telemetry::install(
        telemetry::TelemetryConfig::new("sampled")
            .jsonl(&path)
            .profile(true)
            .meta("seed", 7)
            .meta("scale", "test"),
    )
    .expect("install");

    let space = DesignSpace::from_configs(
        DesignSpace::table1_reduced()
            .configs()
            .iter()
            .copied()
            .step_by(12)
            .collect(),
    );
    let cfg = SampledConfig {
        sampling_rates: vec![0.2],
        strategy: SamplingStrategy::Random,
        models: vec![ModelKind::LrB, ModelKind::NnS],
        sim: SimOptions::quick(),
        seed: 7,
        estimate_errors: true,
        export_models: None,
    };
    let result = run_sampled_dse(Benchmark::Mcf, &space, &cfg, None);
    assert_eq!(result.points.len(), 2);
    let summary = run.finish();

    let text = std::fs::read_to_string(&path).expect("manifest written");
    let lines: Vec<Value> = text
        .lines()
        .map(|l| parse(l).unwrap_or_else(|e| panic!("unparseable line: {e}\n{l}")))
        .collect();
    assert!(!lines.is_empty());

    // The meta header comes first and carries the install-time metadata.
    assert_eq!(lines[0].get("type").and_then(Value::as_str), Some("meta"));
    assert_eq!(
        lines[0].get("label").and_then(Value::as_str),
        Some("sampled")
    );
    assert_eq!(lines[0].get("seed").and_then(Value::as_u64), Some(7));
    assert_eq!(
        lines[0].get("schema").and_then(Value::as_str),
        Some("perfpredict.telemetry/v1")
    );

    // Every stage of the pipeline must appear as a span.
    let span_paths: BTreeSet<&str> = lines
        .iter()
        .filter(|v| v.get("type").and_then(Value::as_str) == Some("span"))
        .map(|v| v.get("path").unwrap().as_str().unwrap())
        .collect();
    for expected in [
        "sampled_dse",
        "sampled_dse/sweep",
        "sampled_dse/sweep/materialize",
        "sampled_dse/rate",
        "sampled_dse/rate/model",
        "sampled_dse/rate/model/fit",
        "sampled_dse/rate/model/fit/train",
        "sampled_dse/rate/model/predict",
        "sampled_dse/rate/model/estimate_error",
        "sampled_dse/rate/model/estimate_error/estimate",
        "sampled_dse/rate/model/estimate_error/estimate/fold",
    ] {
        assert!(
            span_paths.contains(expected),
            "span '{expected}' missing; got {span_paths:?}"
        );
    }

    // Every span's wall time is non-negative and finite.
    for v in &lines {
        if v.get("type").and_then(Value::as_str) == Some("span") {
            let wall = v.get("wall_ms").unwrap().as_f64().unwrap();
            assert!(wall >= 0.0 && wall.is_finite());
        }
    }

    // Per-model counters roll up into the manifest tail and the summary.
    let counters: BTreeSet<&str> = lines
        .iter()
        .filter(|v| v.get("type").and_then(Value::as_str) == Some("counter"))
        .map(|v| v.get("name").unwrap().as_str().unwrap())
        .collect();
    for expected in [
        "sim/windows",
        "sim/cycles",
        "cache/l1d_accesses",
        "bpred/branches",
        "train/fits",
    ] {
        assert!(counters.contains(expected), "counter '{expected}' missing");
    }
    // 2 models × (1 full fit + 5 cross-validation fits) = 12 trainings.
    let fits = lines
        .iter()
        .find(|v| {
            v.get("type").and_then(Value::as_str) == Some("counter")
                && v.get("name").and_then(Value::as_str) == Some("train/fits")
        })
        .and_then(|v| v.get("value").unwrap().as_u64())
        .expect("train/fits counter");
    assert_eq!(fits, 12);
    assert_eq!(
        summary
            .counters
            .iter()
            .find(|(k, _)| k == "train/fits")
            .unwrap()
            .1,
        12
    );

    // The timing distributions land as histogram records that decode
    // back into the exact histograms the run accumulated.
    let hist_names: BTreeSet<&str> = lines
        .iter()
        .filter(|v| v.get("type").and_then(Value::as_str) == Some("histogram"))
        .map(|v| v.get("name").unwrap().as_str().unwrap())
        .collect();
    for expected in ["sim/config_ns", "train/epoch_ns", "train/fold_fit_ns"] {
        assert!(
            hist_names.contains(expected),
            "histogram '{expected}' missing; got {hist_names:?}"
        );
    }
    for v in &lines {
        if v.get("type").and_then(Value::as_str) == Some("histogram") {
            let (name, h) = telemetry::Histogram::from_manifest(v).expect("histogram decodes");
            let (_, run_h) = summary
                .hists
                .iter()
                .find(|(n, _)| *n == name)
                .unwrap_or_else(|| panic!("summary missing histogram '{name}'"));
            assert_eq!(&h, run_h, "{name} manifest/summary mismatch");
            assert!(h.count() > 0, "{name} is empty");
        }
    }

    // The profiler aggregates the span tree into profile records whose
    // paths mirror the observed spans.
    let profile_paths: BTreeSet<&str> = lines
        .iter()
        .filter(|v| v.get("type").and_then(Value::as_str) == Some("profile"))
        .map(|v| v.get("path").unwrap().as_str().unwrap())
        .collect();
    assert!(
        profile_paths.contains("sampled_dse"),
        "profile root missing; got {profile_paths:?}"
    );
    assert!(profile_paths.is_subset(&span_paths));
    for v in &lines {
        if v.get("type").and_then(Value::as_str) == Some("profile") {
            assert!(v.get("calls").unwrap().as_u64().unwrap() > 0);
            let total = v.get("total_ns").unwrap().as_u64().unwrap();
            let self_ns = v.get("self_ns").unwrap().as_u64().unwrap();
            assert!(self_ns <= total, "self exceeds total: {v:?}");
        }
    }

    // Progress ticks for the sweep, and the closing summary line.
    assert!(lines.iter().any(|v| {
        v.get("type").and_then(Value::as_str) == Some("progress")
            && v.get("name").and_then(Value::as_str) == Some("sweep")
    }));
    let last = lines.last().unwrap();
    assert_eq!(last.get("type").and_then(Value::as_str), Some("summary"));
    assert!(last.get("wall_ms").unwrap().as_f64().unwrap() > 0.0);

    std::fs::remove_file(&path).ok();
}
