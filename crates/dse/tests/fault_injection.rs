//! Fault-injection suite: every injected fault must surface as a typed
//! error, a bounded retry, or a recorded degradation — never a panic.
//!
//! Faults covered, mirroring `dse::faultinject`:
//! * NaN cycle counts from the simulator (rows dropped, run completes);
//! * constant and exactly-collinear predictor columns (LR selection
//!   skips the offender);
//! * degenerate targets — constant (flat model or typed error) and NaN
//!   (typed `DegenerateData`);
//! * divergent training configurations (retries, then typed `Diverged`);
//! * checkpoint files truncated mid-write (resumed, finishing only the
//!   remaining work) and corrupted mid-file (typed `Checkpoint` reject).

use cpusim::runner::{sweep_design_space, try_sweep_design_space, SimOptions};
use cpusim::{Benchmark, DesignSpace};
use dse::data::table_from_sweep;
use dse::faultinject::{
    corrupt_line, divergent_train_config, nan_cycles, truncate_file, with_collinear_column,
    with_constant_column, with_constant_target, with_nan_targets,
};
use dse::{try_run_sampled_dse, SampledConfig, SamplingStrategy};
use linalg::Matrix;
use mlmodels::nn::Mlp;
use mlmodels::{try_train, ModelKind, Table};

fn small_space() -> DesignSpace {
    DesignSpace::from_configs(
        DesignSpace::table1_reduced()
            .configs()
            .iter()
            .copied()
            .step_by(4)
            .collect(),
    )
}

fn small_cfg() -> SampledConfig {
    SampledConfig {
        sampling_rates: vec![0.2],
        strategy: SamplingStrategy::Random,
        models: vec![ModelKind::LrB, ModelKind::NnS],
        sim: SimOptions::quick(),
        seed: 11,
        estimate_errors: false,
        export_models: None,
    }
}

fn sweep_table() -> Table {
    let res = sweep_design_space(&small_space(), Benchmark::Gcc, &SimOptions::quick());
    table_from_sweep(&res[..64])
}

fn tmp(name: &str) -> String {
    let dir = std::env::temp_dir().join("perfpredict-faultsuite");
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let path = dir.join(name);
    let _ = std::fs::remove_file(&path);
    path.to_string_lossy().into_owned()
}

#[test]
fn nan_cycles_degrade_gracefully() {
    let space = small_space();
    let cfg = small_cfg();
    let mut sweep = sweep_design_space(&space, Benchmark::Mcf, &cfg.sim);
    nan_cycles(&mut sweep, 10, 77);
    let run = try_run_sampled_dse(Benchmark::Mcf, &space, &cfg, Some(sweep), None)
        .expect("NaN rows must be dropped, not fatal");
    assert_eq!(run.space_size, space.len() - 10);
    assert!(run.points.iter().all(|p| p.true_error.is_finite()));
}

#[test]
fn all_nan_cycles_is_a_typed_error() {
    let space = small_space();
    let cfg = small_cfg();
    let mut sweep = sweep_design_space(&space, Benchmark::Mcf, &cfg.sim);
    let n = sweep.len();
    nan_cycles(&mut sweep, n, 77);
    let err = try_run_sampled_dse(Benchmark::Mcf, &space, &cfg, Some(sweep), None)
        .expect_err("nothing left to fit");
    assert_eq!(err.kind(), "degenerate");
}

#[test]
fn constant_column_still_trains() {
    let faulty = with_constant_column(&sweep_table(), "l2_size_kb");
    for kind in [ModelKind::LrE, ModelKind::LrS, ModelKind::NnS] {
        let m = try_train(kind, &faulty, 3).unwrap_or_else(|e| panic!("{}: {e}", kind.abbrev()));
        assert!(m.predict(&faulty).iter().all(|p| p.is_finite()));
    }
}

#[test]
fn collinear_column_is_survivable_for_every_lr_method() {
    let faulty = with_collinear_column(&sweep_table(), "ruu_size");
    for kind in [
        ModelKind::LrE,
        ModelKind::LrS,
        ModelKind::LrB,
        ModelKind::LrF,
    ] {
        let m = try_train(kind, &faulty, 3).unwrap_or_else(|e| panic!("{}: {e}", kind.abbrev()));
        assert!(m.predict(&faulty).iter().all(|p| p.is_finite()));
    }
}

#[test]
fn constant_target_never_panics() {
    let faulty = with_constant_target(&sweep_table(), 1e6);
    for kind in ModelKind::ALL {
        match try_train(kind, &faulty, 5) {
            Ok(m) => {
                // A flat surface is the only honest fit.
                for p in m.predict(&faulty) {
                    assert!(p.is_finite(), "{}: non-finite prediction", kind.abbrev());
                }
            }
            Err(e) => assert!(
                matches!(e.kind(), "degenerate" | "diverged" | "singular"),
                "{}: unexpected error kind {} ({e})",
                kind.abbrev(),
                e.kind()
            ),
        }
    }
}

#[test]
fn nan_targets_are_typed_degenerate() {
    let faulty = with_nan_targets(&sweep_table(), 3, 9);
    for kind in [ModelKind::LrB, ModelKind::NnQ] {
        let err = try_train(kind, &faulty, 5).expect_err("NaN targets must be rejected");
        assert_eq!(err.kind(), "degenerate", "{}", kind.abbrev());
    }
}

#[test]
fn divergent_config_exhausts_retries_into_typed_error() {
    let rows: Vec<Vec<f64>> = (0..32)
        .map(|i| vec![(i % 8) as f64 / 7.0, (i / 8) as f64 / 3.0])
        .collect();
    let x = Matrix::from_rows(&rows);
    let y: Vec<f64> = rows.iter().map(|r| 0.3 + 0.5 * r[0] - 0.2 * r[1]).collect();
    let mut net = Mlp::new(2, &[4], 1);
    let err = net
        .try_train(&x, &y, &divergent_train_config(1))
        .expect_err("1e12 learning rate must diverge");
    assert_eq!(err.kind(), "diverged");
    assert!(err.exit_code() == 5);
}

#[test]
fn killed_sweep_resumes_only_remaining_work() {
    let space = small_space();
    let opts = SimOptions::quick();
    let path = tmp("killed-sweep.jsonl");
    let fresh =
        try_sweep_design_space(&space, Benchmark::Equake, &opts, Some(&path)).expect("first run");
    assert_eq!(fresh.simulated, space.len());

    // Kill: keep the header, 6 complete records, and half of a seventh.
    let text = std::fs::read_to_string(&path).expect("read");
    let lines: Vec<&str> = text.lines().collect();
    let keep = format!(
        "{}\n{}",
        lines[..7].join("\n"),
        &lines[7][..lines[7].len() / 2]
    );
    std::fs::write(&path, keep).expect("simulate kill");

    let resumed =
        try_sweep_design_space(&space, Benchmark::Equake, &opts, Some(&path)).expect("resume");
    assert_eq!(resumed.restored, 6, "exactly the complete records restore");
    assert_eq!(resumed.simulated, space.len() - 6);
    for (a, b) in fresh.results.iter().zip(&resumed.results) {
        assert_eq!(a.cycles, b.cycles, "resume must not change any result");
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn truncated_checkpoint_tail_is_tolerated_at_any_cut() {
    let space = small_space();
    let opts = SimOptions::quick();
    let path = tmp("truncate-any.jsonl");
    try_sweep_design_space(&space, Benchmark::Mesa, &opts, Some(&path)).expect("seed run");
    let full = std::fs::read_to_string(&path).expect("read");
    // Cut the file at several byte offsets inside the final 2 records.
    let base = full.len();
    for cut in [base - 1, base - 7, base - 40] {
        std::fs::write(&path, &full[..cut]).expect("write");
        truncate_file(&path, cut as u64).expect("truncate");
        let out = try_sweep_design_space(&space, Benchmark::Mesa, &opts, Some(&path))
            .unwrap_or_else(|e| panic!("cut at {cut}: {e}"));
        assert_eq!(out.results.len(), space.len());
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn corrupted_checkpoint_is_rejected_not_trusted() {
    let space = small_space();
    let opts = SimOptions::quick();
    let path = tmp("corrupt.jsonl");
    try_sweep_design_space(&space, Benchmark::Applu, &opts, Some(&path)).expect("seed run");
    corrupt_line(&path, 3).expect("inject corruption");
    let err = try_sweep_design_space(&space, Benchmark::Applu, &opts, Some(&path))
        .expect_err("mid-file corruption must be rejected");
    assert_eq!(err.kind(), "checkpoint");
    assert_eq!(err.exit_code(), 4);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn checkpoint_from_another_experiment_is_rejected() {
    let space = small_space();
    let cfg = small_cfg();
    let path = tmp("wrong-run.jsonl");
    try_run_sampled_dse(Benchmark::Applu, &space, &cfg, None, Some(&path)).expect("seed run");
    let err = try_run_sampled_dse(Benchmark::Gcc, &space, &cfg, None, Some(&path))
        .expect_err("benchmark mismatch");
    assert_eq!(err.kind(), "checkpoint");
    assert!(err.to_string().contains("benchmark"), "{err}");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn killed_sampled_dse_resumes_and_matches_fresh_run() {
    let space = small_space();
    let cfg = SampledConfig {
        estimate_errors: true,
        export_models: None,
        ..small_cfg()
    };
    let path = tmp("killed-dse.jsonl");
    let fresh =
        try_run_sampled_dse(Benchmark::Applu, &space, &cfg, None, Some(&path)).expect("first run");
    // Kill after the sweep and the first fit record.
    let text = std::fs::read_to_string(&path).expect("read");
    let keep: Vec<&str> = text.lines().take(1 + space.len() + 1).collect();
    std::fs::write(&path, format!("{}\n", keep.join("\n"))).expect("simulate kill");

    let resumed =
        try_run_sampled_dse(Benchmark::Applu, &space, &cfg, None, Some(&path)).expect("resume");
    assert_eq!(resumed.points.len(), fresh.points.len());
    for (a, b) in fresh.points.iter().zip(&resumed.points) {
        assert_eq!(a.model, b.model);
        assert_eq!(a.true_error, b.true_error);
        assert_eq!(a.estimated.map(|e| e.max), b.estimated.map(|e| e.max));
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn killed_shard_worker_mid_unit_preserves_merged_identity() {
    // A shard worker dies mid-unit: its `claim` record has no matching
    // `unit_done`, and the ledger tail is torn mid-line. Resume must
    // re-claim the orphaned unit and the merged output must stay
    // byte-identical to a sequential single-driver sweep.
    let space = small_space();
    let opts = SimOptions::quick();
    let shard = cpusim::ShardOptions {
        shards: 2,
        unit_size: 4,
    };

    let sequential = try_sweep_design_space(&space, Benchmark::Gcc, &opts, None).expect("oracle");
    let oracle = cpusim::merged_jsonl(&sequential.results);

    let path = tmp("killed-shard-worker.jsonl");
    cpusim::try_sweep_sharded(&space, Benchmark::Gcc, &opts, &shard, &path)
        .expect("seed sharded run");

    // Kill: keep everything up to (and including) the last claim line,
    // then a torn half of the following line.
    let text = std::fs::read_to_string(&path).expect("read ledger");
    let lines: Vec<&str> = text.lines().collect();
    let last_claim = lines
        .iter()
        .rposition(|l| l.contains("\"type\":\"claim\""))
        .expect("ledger has claim records");
    let torn = &lines[last_claim + 1][..lines[last_claim + 1].len() / 2];
    let keep = format!("{}\n{}", lines[..=last_claim].join("\n"), torn);
    std::fs::write(&path, keep).expect("simulate worker kill");

    let resumed = cpusim::try_sweep_sharded(&space, Benchmark::Gcc, &opts, &shard, &path)
        .expect("resume after worker kill");
    assert!(
        resumed.reclaimed >= 1,
        "the orphaned unit must be re-claimed"
    );
    assert!(resumed.restored > 0 && resumed.simulated > 0);
    assert_eq!(
        cpusim::merged_jsonl(&resumed.results),
        oracle,
        "merged output must be byte-identical to the sequential sweep"
    );
    let _ = std::fs::remove_file(&path);
}
