//! Translation lookaside buffers.
//!
//! Table 1 specifies TLB capacities as *reach* in KB (256/1024 KB for the
//! I-TLB, 512/2048 KB for the D-TLB). With 4 KB pages that reach maps to an
//! entry count; we model each TLB as a 4-way set-associative page cache
//! with LRU replacement, which is how SimpleScalar configures its TLBs.

use crate::cache::Cache;
use crate::config::CacheGeometry;

/// Page size in bytes (4 KB, the SimpleScalar default).
pub(crate) const PAGE_BYTES: u64 = 4096;

/// One TLB.
#[derive(Debug, Clone)]
pub struct Tlb {
    inner: Cache,
}

impl Tlb {
    /// Build a TLB covering `reach_kb` kilobytes of address space.
    ///
    /// Entries = reach / page size; organized 4-way set associative (or
    /// fully associative when fewer than 4 entries).
    pub fn new(reach_kb: u32) -> Self {
        let entries = ((reach_kb as u64 * 1024) / PAGE_BYTES).max(1) as u32;
        assert!(
            entries.is_power_of_two(),
            "TLB entries must be a power of two: {entries}"
        );
        let assoc = entries.min(4);
        // Reuse the cache structure: treat each page as a "line" of
        // PAGE_BYTES so the set index comes from the page number.
        let geom = CacheGeometry {
            size_kb: entries * (PAGE_BYTES as u32 / 1024),
            line_b: PAGE_BYTES as u32,
            assoc,
        };
        Tlb {
            inner: Cache::new(geom),
        }
    }

    /// Translate a byte address; `true` = TLB hit.
    pub fn access(&mut self, addr: u64) -> bool {
        self.inner.access(addr)
    }

    /// Miss count.
    pub fn misses(&self) -> u64 {
        self.inner.misses()
    }

    /// Access count.
    pub fn accesses(&self) -> u64 {
        self.inner.accesses()
    }

    /// Miss rate.
    pub fn miss_rate(&self) -> f64 {
        self.inner.miss_rate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entry_count_from_reach() {
        // 256 KB reach / 4 KB page = 64 entries; hitting 64 distinct pages
        // twice should yield exactly 64 misses.
        let mut t = Tlb::new(256);
        for _ in 0..2 {
            for p in 0..64u64 {
                t.access(p * PAGE_BYTES);
            }
        }
        assert_eq!(t.misses(), 64);
    }

    #[test]
    fn thrash_beyond_reach() {
        // 128 distinct pages in a 64-entry TLB with cyclic access: the
        // second pass misses everywhere (LRU + cyclic).
        let mut t = Tlb::new(256);
        for p in 0..128u64 {
            t.access(p * PAGE_BYTES * 4); // *4 spreads over sets too
        }
        let before = t.misses();
        for p in 0..128u64 {
            t.access(p * PAGE_BYTES * 4);
        }
        assert!(t.misses() >= before + 100, "expected heavy thrashing");
    }

    #[test]
    fn same_page_hits() {
        let mut t = Tlb::new(512);
        assert!(!t.access(0x1234));
        assert!(t.access(0x1FFF), "same 4K page");
        assert!(!t.access(0x2F_0000));
    }

    #[test]
    fn larger_reach_fewer_misses() {
        let pages: Vec<u64> = (0..4000u64)
            .map(|i| ((i * 37) % 300) * PAGE_BYTES)
            .collect();
        let mut small = Tlb::new(512);
        let mut large = Tlb::new(2048);
        let mut sm = 0;
        let mut lm = 0;
        for &a in &pages {
            if !small.access(a) {
                sm += 1;
            }
            if !large.access(a) {
                lm += 1;
            }
        }
        assert!(lm <= sm);
    }
}
