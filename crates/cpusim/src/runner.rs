//! High-level simulation drivers.
//!
//! [`simulate`] produces the cycle count of one `(benchmark, config)` pair;
//! [`sweep_design_space`] evaluates a whole [`DesignSpace`] in parallel with
//! Rayon, replaying one materialized trace so every configuration sees
//! byte-identical instructions. The sweep is the substitute for the paper's
//! "4608 simulations per benchmark" SimpleScalar campaign.

use crate::config::{CpuConfig, DesignSpace};
use crate::core::{Core, PipelineStats};
use crate::simpoint::{analyze, SimPointAnalysis};
use crate::trace::{Inst, ReplaySource, TraceGenerator};
use crate::workload::Benchmark;
use linalg::dist::child_seed;
use rayon::prelude::*;

/// Options controlling a simulation run.
#[derive(Debug, Clone, Copy)]
pub struct SimOptions {
    /// Instructions to simulate per configuration (per interval when
    /// SimPoints are used). The paper runs 100M-instruction intervals; the
    /// default here is scaled down so a full 4608-point sweep stays
    /// laptop-friendly while keeping the same response structure.
    pub instructions: u64,
    /// Trace seed (deterministic per benchmark).
    pub seed: u64,
    /// Use SimPoint phase analysis to pick representative intervals
    /// instead of simulating from the trace start.
    pub use_simpoints: bool,
    /// Number of candidate intervals when SimPoints are enabled.
    pub n_intervals: usize,
    /// Maximum clusters for the SimPoint BIC sweep.
    pub max_k: usize,
}

impl Default for SimOptions {
    fn default() -> Self {
        SimOptions {
            instructions: 50_000,
            seed: 0xC0FFEE,
            use_simpoints: false,
            n_intervals: 10,
            max_k: 4,
        }
    }
}

impl SimOptions {
    /// A fast preset for unit tests and examples.
    pub fn quick() -> Self {
        SimOptions {
            instructions: 8_000,
            ..Default::default()
        }
    }
}

/// Result of simulating one configuration.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// The simulated configuration.
    pub config: CpuConfig,
    /// The benchmark.
    pub benchmark: Benchmark,
    /// Estimated execution cycles for the simulated instruction budget
    /// (SimPoint-weighted when enabled). This is the model target `y`.
    pub cycles: f64,
    /// Raw pipeline statistics (of the single run, or of the heaviest
    /// SimPoint interval).
    pub stats: PipelineStats,
}

impl SimResult {
    /// Cycles per instruction.
    pub fn cpi(&self) -> f64 {
        self.cycles / self.stats.instructions.max(1) as f64
    }
}

/// Materialize the instruction window(s) a run will replay.
///
/// Returns the interval traces and their weights. Without SimPoints this is
/// a single full-weight window from the trace start.
fn materialize(
    benchmark: Benchmark,
    opts: &SimOptions,
) -> (Vec<Vec<Inst>>, Vec<f64>, Option<SimPointAnalysis>) {
    let _span = telemetry::span!(
        "materialize",
        benchmark = benchmark.name(),
        simpoints = opts.use_simpoints,
    );
    if !opts.use_simpoints {
        let mut gen = TraceGenerator::for_benchmark(benchmark, opts.seed);
        return (
            vec![gen.take_vec(opts.instructions as usize)],
            vec![1.0],
            None,
        );
    }
    let analysis = analyze(
        benchmark,
        opts.seed,
        opts.n_intervals,
        opts.instructions,
        opts.max_k,
    );
    // Selected intervals are materialized in trace order with one pass.
    let mut gen = TraceGenerator::for_benchmark(benchmark, opts.seed);
    let mut traces = Vec::with_capacity(analysis.points.len());
    let mut weights = Vec::with_capacity(analysis.points.len());
    let mut cursor = 0usize;
    for p in &analysis.points {
        while cursor < p.interval {
            // Skip intervals between representatives.
            for _ in 0..opts.instructions {
                let _ = gen.next_inst();
            }
            cursor += 1;
        }
        traces.push(gen.take_vec(opts.instructions as usize));
        cursor += 1;
        weights.push(p.weight);
    }
    (traces, weights, Some(analysis))
}

/// Simulate one configuration on the materialized windows.
fn run_windows(
    config: CpuConfig,
    benchmark: Benchmark,
    traces: &[Vec<Inst>],
    weights: &[f64],
    seed: u64,
) -> SimResult {
    debug_assert_eq!(traces.len(), weights.len());
    let mut weighted_cycles = 0.0;
    let mut heaviest: Option<(f64, PipelineStats)> = None;
    for (i, (trace, &w)) in traces.iter().zip(weights).enumerate() {
        let mut src = ReplaySource::new(trace, child_seed(seed, i as u64));
        let mut core = Core::new(config);
        let stats = core.run(&mut src, trace.len() as u64);
        weighted_cycles += w * stats.cycles as f64;
        if heaviest.as_ref().is_none_or(|(hw, _)| w > *hw) {
            heaviest = Some((w, stats));
        }
    }
    let stats = heaviest.expect("at least one window").1;
    telemetry::counter_add("sim/windows", traces.len() as u64);
    record_stats(&stats);
    SimResult {
        config,
        benchmark,
        cycles: weighted_cycles,
        stats,
    }
}

/// Roll per-run pipeline statistics into the telemetry counters, so the
/// run manifest carries cache/branch-predictor totals for the whole sweep.
fn record_stats(stats: &PipelineStats) {
    if !telemetry::enabled() {
        return;
    }
    telemetry::counter_add("sim/cycles", stats.cycles);
    telemetry::counter_add("sim/instructions", stats.instructions);
    telemetry::counter_add("cache/l1d_accesses", stats.l1d_accesses);
    telemetry::counter_add("cache/l1d_misses", stats.l1d_misses);
    telemetry::counter_add("cache/l1i_accesses", stats.l1i_accesses);
    telemetry::counter_add("cache/l1i_misses", stats.l1i_misses);
    telemetry::counter_add("cache/l2_accesses", stats.l2_accesses);
    telemetry::counter_add("cache/l2_misses", stats.l2_misses);
    telemetry::counter_add("cache/l3_accesses", stats.l3_accesses);
    telemetry::counter_add("cache/l3_misses", stats.l3_misses);
    telemetry::counter_add("tlb/dtlb_misses", stats.dtlb_misses);
    telemetry::counter_add("tlb/itlb_misses", stats.itlb_misses);
    telemetry::counter_add("bpred/branches", stats.branches);
    telemetry::counter_add("bpred/mispredicts", stats.mispredicts);
}

/// Simulate a single `(benchmark, config)` pair.
pub fn simulate(benchmark: Benchmark, config: CpuConfig, opts: &SimOptions) -> SimResult {
    let _span = telemetry::span!("simulate", benchmark = benchmark.name());
    let (traces, weights, _) = materialize(benchmark, opts);
    run_windows(config, benchmark, &traces, &weights, opts.seed)
}

/// Simulate every configuration of a design space in parallel.
///
/// The trace is materialized once and replayed per configuration, so the
/// whole sweep is embarrassingly parallel and deterministic. Results are
/// returned in design-space order.
pub fn sweep_design_space(
    space: &DesignSpace,
    benchmark: Benchmark,
    opts: &SimOptions,
) -> Vec<SimResult> {
    let n_configs = space.configs().len();
    let _span = telemetry::span!("sweep", benchmark = benchmark.name(), configs = n_configs,);
    let (traces, weights, _) = materialize(benchmark, opts);
    let progress = telemetry::Progress::new("sweep", n_configs as u64);
    space
        .configs()
        .par_iter()
        .map(|&config| {
            let result = run_windows(config, benchmark, &traces, &weights, opts.seed);
            progress.inc();
            result
        })
        .collect()
}

/// Per-benchmark summary line of a sweep, matching §4.1's
/// "range / variance" report (range = fastest-to-slowest cycle ratio,
/// variance = coefficient of variation of cycles).
#[derive(Debug, Clone, Copy)]
pub struct SweepSummary {
    /// Ratio of the slowest to the fastest configuration.
    pub range: f64,
    /// Coefficient of variation of cycle counts.
    pub variation: f64,
}

/// Summarize a sweep's cycle distribution.
pub fn summarize_sweep(results: &[SimResult]) -> SweepSummary {
    let cycles: Vec<f64> = results.iter().map(|r| r.cycles).collect();
    SweepSummary {
        range: linalg::stats::range_ratio(&cycles),
        variation: linalg::stats::variation(&cycles),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simulate_baseline_is_deterministic() {
        let opts = SimOptions::quick();
        let a = simulate(Benchmark::Applu, CpuConfig::baseline(), &opts);
        let b = simulate(Benchmark::Applu, CpuConfig::baseline(), &opts);
        assert_eq!(a.cycles, b.cycles);
        assert!(a.cycles > 0.0);
    }

    #[test]
    fn sweep_reduced_space_produces_spread() {
        let space =
            DesignSpace::from_configs(DesignSpace::table1_reduced().configs()[..24].to_vec());
        let opts = SimOptions::quick();
        let results = sweep_design_space(&space, Benchmark::Mcf, &opts);
        assert_eq!(results.len(), 24);
        let s = summarize_sweep(&results);
        assert!(
            s.range > 1.0,
            "configs should differ in cycles: range {}",
            s.range
        );
    }

    #[test]
    fn sweep_order_matches_space_order() {
        let space =
            DesignSpace::from_configs(DesignSpace::table1_reduced().configs()[..8].to_vec());
        let opts = SimOptions::quick();
        let results = sweep_design_space(&space, Benchmark::Mesa, &opts);
        for (r, c) in results.iter().zip(space.configs()) {
            assert_eq!(r.config, *c);
        }
    }

    #[test]
    fn simpoint_mode_runs_and_weights_apply() {
        let opts = SimOptions {
            instructions: 3_000,
            use_simpoints: true,
            n_intervals: 6,
            max_k: 3,
            ..Default::default()
        };
        let r = simulate(Benchmark::Gcc, CpuConfig::baseline(), &opts);
        assert!(r.cycles > 0.0);
        assert!(r.stats.instructions > 0);
    }

    #[test]
    fn summary_matches_manual_stats() {
        let space =
            DesignSpace::from_configs(DesignSpace::table1_reduced().configs()[..6].to_vec());
        let results = sweep_design_space(&space, Benchmark::Applu, &SimOptions::quick());
        let s = summarize_sweep(&results);
        let cycles: Vec<f64> = results.iter().map(|r| r.cycles).collect();
        let lo = cycles.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = cycles.iter().cloned().fold(0.0f64, f64::max);
        assert!((s.range - hi / lo).abs() < 1e-12);
        assert!(s.variation >= 0.0);
    }

    #[test]
    fn different_benchmarks_produce_different_cycles() {
        let cfg = CpuConfig::baseline();
        let opts = SimOptions::quick();
        let a = simulate(Benchmark::Applu, cfg, &opts);
        let m = simulate(Benchmark::Mcf, cfg, &opts);
        assert_ne!(a.cycles, m.cycles);
        assert_eq!(a.benchmark, Benchmark::Applu);
        assert_eq!(m.benchmark, Benchmark::Mcf);
    }

    #[test]
    fn cpi_is_positive_and_finite() {
        let r = simulate(
            Benchmark::Equake,
            CpuConfig::baseline(),
            &SimOptions::quick(),
        );
        let cpi = r.cpi();
        assert!(cpi.is_finite() && cpi > 0.0);
    }
}
