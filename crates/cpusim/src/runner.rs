//! High-level simulation drivers.
//!
//! [`simulate`] produces the cycle count of one `(benchmark, config)` pair;
//! [`sweep_design_space`] evaluates a whole [`DesignSpace`] in parallel with
//! Rayon, replaying one materialized trace so every configuration sees
//! byte-identical instructions. The sweep is the substitute for the paper's
//! "4608 simulations per benchmark" SimpleScalar campaign.

use crate::config::{CpuConfig, DesignSpace};
use crate::core::{Core, PipelineStats};
use crate::simpoint::{analyze, SimPointAnalysis};
use crate::trace::{Inst, ReplaySource, TraceGenerator};
use crate::workload::Benchmark;
use fault::checkpoint::{self, CheckpointWriter};
use fault::{Error, Result};
use linalg::dist::child_seed;
use rayon::prelude::*;
use telemetry::json::JsonObject;

/// Options controlling a simulation run.
#[derive(Debug, Clone, Copy)]
pub struct SimOptions {
    /// Instructions to simulate per configuration (per interval when
    /// SimPoints are used). The paper runs 100M-instruction intervals; the
    /// default here is scaled down so a full 4608-point sweep stays
    /// laptop-friendly while keeping the same response structure.
    pub instructions: u64,
    /// Trace seed (deterministic per benchmark).
    pub seed: u64,
    /// Use SimPoint phase analysis to pick representative intervals
    /// instead of simulating from the trace start.
    pub use_simpoints: bool,
    /// Number of candidate intervals when SimPoints are enabled.
    pub n_intervals: usize,
    /// Maximum clusters for the SimPoint BIC sweep.
    pub max_k: usize,
}

impl Default for SimOptions {
    fn default() -> Self {
        SimOptions {
            instructions: 50_000,
            seed: 0xC0FFEE,
            use_simpoints: false,
            n_intervals: 10,
            max_k: 4,
        }
    }
}

impl SimOptions {
    /// A fast preset for unit tests and examples.
    pub fn quick() -> Self {
        SimOptions {
            instructions: 8_000,
            ..Default::default()
        }
    }
}

/// Result of simulating one configuration.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// The simulated configuration.
    pub config: CpuConfig,
    /// The benchmark.
    pub benchmark: Benchmark,
    /// Estimated execution cycles for the simulated instruction budget
    /// (SimPoint-weighted when enabled). This is the model target `y`.
    pub cycles: f64,
    /// Raw pipeline statistics (of the single run, or of the heaviest
    /// SimPoint interval).
    pub stats: PipelineStats,
}

impl SimResult {
    /// Cycles per instruction.
    pub fn cpi(&self) -> f64 {
        self.cycles / self.stats.instructions.max(1) as f64
    }
}

/// Materialize the instruction window(s) a run will replay.
///
/// Returns the interval traces and their weights. Without SimPoints this is
/// a single full-weight window from the trace start. Crate-visible so the
/// sharded driver ([`crate::shard`]) can share one materialization across
/// its workers.
pub(crate) fn materialize(
    benchmark: Benchmark,
    opts: &SimOptions,
) -> (Vec<Vec<Inst>>, Vec<f64>, Option<SimPointAnalysis>) {
    let _span = telemetry::span!(
        "materialize",
        benchmark = benchmark.name(),
        simpoints = opts.use_simpoints,
    );
    if !opts.use_simpoints {
        let mut gen = TraceGenerator::for_benchmark(benchmark, opts.seed);
        return (
            vec![gen.take_vec(opts.instructions as usize)],
            vec![1.0],
            None,
        );
    }
    let analysis = analyze(
        benchmark,
        opts.seed,
        opts.n_intervals,
        opts.instructions,
        opts.max_k,
    );
    // Selected intervals are materialized in trace order with one pass.
    let mut gen = TraceGenerator::for_benchmark(benchmark, opts.seed);
    let mut traces = Vec::with_capacity(analysis.points.len());
    let mut weights = Vec::with_capacity(analysis.points.len());
    let mut cursor = 0usize;
    for p in &analysis.points {
        while cursor < p.interval {
            // Skip intervals between representatives.
            for _ in 0..opts.instructions {
                let _ = gen.next_inst();
            }
            cursor += 1;
        }
        traces.push(gen.take_vec(opts.instructions as usize));
        cursor += 1;
        weights.push(p.weight);
    }
    (traces, weights, Some(analysis))
}

/// Simulate one configuration on the materialized windows.
pub(crate) fn run_windows(
    config: CpuConfig,
    benchmark: Benchmark,
    traces: &[Vec<Inst>],
    weights: &[f64],
    seed: u64,
) -> SimResult {
    debug_assert_eq!(traces.len(), weights.len());
    let mut weighted_cycles = 0.0;
    let mut heaviest: Option<(f64, PipelineStats)> = None;
    for (i, (trace, &w)) in traces.iter().zip(weights).enumerate() {
        let mut src = ReplaySource::new(trace, child_seed(seed, i as u64));
        let mut core = Core::new(config);
        let stats = core.run(&mut src, trace.len() as u64);
        weighted_cycles += w * stats.cycles as f64;
        if heaviest.as_ref().is_none_or(|(hw, _)| w > *hw) {
            heaviest = Some((w, stats));
        }
    }
    // `materialize` always yields at least one window, so `heaviest` is
    // always set; an empty trace list would be an internal logic error.
    let stats = heaviest.map(|(_, s)| s).unwrap_or_default();
    telemetry::counter_add("sim/windows", traces.len() as u64);
    record_stats(&stats);
    SimResult {
        config,
        benchmark,
        cycles: weighted_cycles,
        stats,
    }
}

/// Roll per-run pipeline statistics into the telemetry counters, so the
/// run manifest carries cache/branch-predictor totals for the whole sweep.
fn record_stats(stats: &PipelineStats) {
    if !telemetry::enabled() {
        return;
    }
    telemetry::counter_add("sim/cycles", stats.cycles);
    telemetry::counter_add("sim/instructions", stats.instructions);
    telemetry::counter_add("cache/l1d_accesses", stats.l1d_accesses);
    telemetry::counter_add("cache/l1d_misses", stats.l1d_misses);
    telemetry::counter_add("cache/l1i_accesses", stats.l1i_accesses);
    telemetry::counter_add("cache/l1i_misses", stats.l1i_misses);
    telemetry::counter_add("cache/l2_accesses", stats.l2_accesses);
    telemetry::counter_add("cache/l2_misses", stats.l2_misses);
    telemetry::counter_add("cache/l3_accesses", stats.l3_accesses);
    telemetry::counter_add("cache/l3_misses", stats.l3_misses);
    telemetry::counter_add("tlb/dtlb_misses", stats.dtlb_misses);
    telemetry::counter_add("tlb/itlb_misses", stats.itlb_misses);
    telemetry::counter_add("bpred/branches", stats.branches);
    telemetry::counter_add("bpred/mispredicts", stats.mispredicts);
}

/// Simulate a single `(benchmark, config)` pair.
pub fn simulate(benchmark: Benchmark, config: CpuConfig, opts: &SimOptions) -> SimResult {
    let _span = telemetry::span!("simulate", benchmark = benchmark.name());
    let (traces, weights, _) = materialize(benchmark, opts);
    run_windows(config, benchmark, &traces, &weights, opts.seed)
}

/// Simulate every configuration of a design space in parallel.
///
/// The trace is materialized once and replayed per configuration, so the
/// whole sweep is embarrassingly parallel and deterministic. Results are
/// returned in design-space order.
///
/// Wrapper over [`try_sweep_design_space`] without a checkpoint; that
/// path has no failure modes, so the unwrap is unreachable.
pub fn sweep_design_space(
    space: &DesignSpace,
    benchmark: Benchmark,
    opts: &SimOptions,
) -> Vec<SimResult> {
    match try_sweep_design_space(space, benchmark, opts, None) {
        Ok(outcome) => outcome.results,
        Err(e) => panic!("sweep_design_space without checkpoint cannot fail: {e}"),
    }
}

/// Outcome of a checkpointed sweep: the full result set plus how much of
/// it was restored versus freshly simulated.
#[derive(Debug, Clone)]
pub struct SweepOutcome {
    /// Per-configuration results, in design-space order.
    pub results: Vec<SimResult>,
    /// Configurations restored from the checkpoint.
    pub restored: usize,
    /// Configurations simulated in this process.
    pub simulated: usize,
}

/// Checkpoint line identifying the run a sweep checkpoint belongs to.
///
/// Public so pipeline layers (e.g. sampled DSE) can create a compatible
/// header when they own the checkpoint file but skip the sweep itself.
/// Alongside the point count, the header pins the space's content hash,
/// so a ledger can never be resumed against a *different* space that
/// happens to have the same size.
pub fn sweep_header(benchmark: Benchmark, space: &DesignSpace, opts: &SimOptions) -> String {
    JsonObject::new()
        .str("type", "header")
        .str("benchmark", benchmark.name())
        .uint("space", space.len() as u64)
        .str("space_hash", &format!("{:016x}", space.content_hash()))
        .uint("instructions", opts.instructions)
        .uint("seed", opts.seed)
        .uint("simpoints", opts.use_simpoints as u64)
        .finish()
}

/// The fields of [`sweep_header`] that must match on resume.
///
/// `space_hash` is part of the contract: checkpoints written before the
/// space generator existed lack the field and are rejected with a typed
/// [`Error::Checkpoint`] (re-run the sweep to rebuild them).
pub fn sweep_header_expectations(
    benchmark: Benchmark,
    space: &DesignSpace,
    opts: &SimOptions,
) -> Vec<(&'static str, String)> {
    vec![
        ("benchmark", benchmark.name().to_string()),
        ("space", space.len().to_string()),
        ("space_hash", format!("{:016x}", space.content_hash())),
        ("instructions", opts.instructions.to_string()),
        ("seed", opts.seed.to_string()),
        ("simpoints", (opts.use_simpoints as u64).to_string()),
    ]
}

/// The canonical checkpoint line for one simulated configuration. Shared
/// by the sequential and sharded drivers so their ledgers (and merged
/// outputs) are byte-compatible.
pub(crate) fn sim_record(idx: usize, result: &SimResult) -> String {
    JsonObject::new()
        .str("type", "sim")
        .uint("idx", idx as u64)
        .num("cycles", result.cycles)
        .uint("stat_cycles", result.stats.cycles)
        .uint("stat_instructions", result.stats.instructions)
        .finish()
}

/// Checkpointed design-space sweep with resume.
///
/// With `checkpoint: Some(path)`, every completed configuration is
/// appended to `path` as a JSON line and flushed, so a killed sweep loses
/// at most the configuration in flight. On restart with the same path,
/// completed configurations are restored from the file (their pipeline
/// stat details beyond cycles/instructions are not persisted) and only
/// the remaining ones are simulated. A checkpoint written by a different
/// run — other benchmark, space size, instruction budget, or seed — is
/// rejected with [`Error::Checkpoint`]; a truncated final line (killed
/// mid-write) is tolerated. Other record types in the file (e.g. the
/// model-fit records a sampled-DSE run appends) are ignored, so one file
/// can checkpoint a whole pipeline.
pub fn try_sweep_design_space(
    space: &DesignSpace,
    benchmark: Benchmark,
    opts: &SimOptions,
    checkpoint: Option<&str>,
) -> Result<SweepOutcome> {
    let n_configs = space.len();
    let _span = telemetry::span!("sweep", benchmark = benchmark.name(), configs = n_configs,);

    let mut done: Vec<Option<SimResult>> = vec![None; n_configs];
    let mut writer: Option<CheckpointWriter> = None;
    let mut restored = 0usize;
    if let Some(path) = checkpoint {
        let records = checkpoint::load_records(path)?;
        if let Some(header) = records.first() {
            checkpoint::check_header(
                path,
                header,
                &sweep_header_expectations(benchmark, space, opts),
            )?;
            for rec in &records[1..] {
                if checkpoint::str_field(path, rec, "type")? != "sim" {
                    continue;
                }
                let idx = checkpoint::u64_field(path, rec, "idx")? as usize;
                if idx >= n_configs {
                    return Err(Error::checkpoint(
                        path,
                        format!("sim record idx {idx} outside design space of {n_configs}"),
                    ));
                }
                let cycles = checkpoint::f64_field(path, rec, "cycles")?;
                let stats = PipelineStats {
                    cycles: checkpoint::u64_field(path, rec, "stat_cycles")?,
                    instructions: checkpoint::u64_field(path, rec, "stat_instructions")?,
                    ..Default::default()
                };
                if done[idx].is_none() {
                    restored += 1;
                }
                done[idx] = Some(SimResult {
                    config: space.config_at(idx),
                    benchmark,
                    cycles,
                    stats,
                });
            }
            telemetry::point!("sweep/resume", restored = restored, total = n_configs);
        }
        let w = CheckpointWriter::append(path)?;
        if records.is_empty() {
            w.append_record(&sweep_header(benchmark, space, opts))?;
        }
        writer = Some(w);
    }

    if restored == n_configs {
        let results = done.into_iter().flatten().collect();
        return Ok(SweepOutcome {
            results,
            restored,
            simulated: 0,
        });
    }

    let (traces, weights, _) = materialize(benchmark, opts);
    let progress = telemetry::Progress::new("sweep", (n_configs - restored) as u64);
    let writer = &writer;
    let done = &done;
    let results: Vec<Result<SimResult>> = (0..n_configs)
        .into_par_iter()
        .map(|idx| {
            if let Some(prior) = &done[idx] {
                return Ok(prior.clone());
            }
            let config = space.config_at(idx);
            let t_sim = telemetry::enabled().then(std::time::Instant::now);
            let result = run_windows(config, benchmark, &traces, &weights, opts.seed);
            if let Some(t) = t_sim {
                telemetry::hist_observe_ns("sim/config_ns", t.elapsed());
            }
            if let Some(w) = writer {
                if result.cycles.is_finite() {
                    w.append_record(&sim_record(idx, &result))?;
                } else {
                    // Non-finite cycles round-trip as JSON null, which
                    // would corrupt resume; re-simulate instead.
                    telemetry::point!("sweep/skip_checkpoint", idx);
                }
            }
            progress.inc();
            Ok(result)
        })
        .collect();
    let results = results.into_iter().collect::<Result<Vec<SimResult>>>()?;
    Ok(SweepOutcome {
        simulated: n_configs - restored,
        restored,
        results,
    })
}

/// Per-benchmark summary line of a sweep, matching §4.1's
/// "range / variance" report (range = fastest-to-slowest cycle ratio,
/// variance = coefficient of variation of cycles).
#[derive(Debug, Clone, Copy)]
pub struct SweepSummary {
    /// Ratio of the slowest to the fastest configuration.
    pub range: f64,
    /// Coefficient of variation of cycle counts.
    pub variation: f64,
}

/// Summarize a sweep's cycle distribution.
pub fn summarize_sweep(results: &[SimResult]) -> SweepSummary {
    let cycles: Vec<f64> = results.iter().map(|r| r.cycles).collect();
    SweepSummary {
        range: linalg::stats::range_ratio(&cycles),
        variation: linalg::stats::variation(&cycles),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simulate_baseline_is_deterministic() {
        let opts = SimOptions::quick();
        let a = simulate(Benchmark::Applu, CpuConfig::baseline(), &opts);
        let b = simulate(Benchmark::Applu, CpuConfig::baseline(), &opts);
        assert_eq!(a.cycles, b.cycles);
        assert!(a.cycles > 0.0);
    }

    #[test]
    fn sweep_reduced_space_produces_spread() {
        let space =
            DesignSpace::from_configs(DesignSpace::table1_reduced().configs()[..24].to_vec());
        let opts = SimOptions::quick();
        let results = sweep_design_space(&space, Benchmark::Mcf, &opts);
        assert_eq!(results.len(), 24);
        let s = summarize_sweep(&results);
        assert!(
            s.range > 1.0,
            "configs should differ in cycles: range {}",
            s.range
        );
    }

    #[test]
    fn sweep_order_matches_space_order() {
        let space =
            DesignSpace::from_configs(DesignSpace::table1_reduced().configs()[..8].to_vec());
        let opts = SimOptions::quick();
        let results = sweep_design_space(&space, Benchmark::Mesa, &opts);
        for (r, c) in results.iter().zip(space.configs()) {
            assert_eq!(r.config, *c);
        }
    }

    fn tmp_checkpoint(name: &str) -> String {
        let dir = std::env::temp_dir().join("perfpredict-runner-tests");
        std::fs::create_dir_all(&dir).expect("create tmp dir");
        let path = dir.join(name);
        let _ = std::fs::remove_file(&path);
        path.to_string_lossy().into_owned()
    }

    #[test]
    fn checkpointed_sweep_resumes_only_remaining_work() {
        let space =
            DesignSpace::from_configs(DesignSpace::table1_reduced().configs()[..10].to_vec());
        let opts = SimOptions::quick();
        let path = tmp_checkpoint("resume.jsonl");

        // Full run to produce the reference results and the checkpoint.
        let full =
            try_sweep_design_space(&space, Benchmark::Mcf, &opts, Some(&path)).expect("first run");
        assert_eq!(full.restored, 0);
        assert_eq!(full.simulated, 10);

        // Simulate a kill: keep the header and the first 4 sim records,
        // truncating the 5th mid-line.
        let text = std::fs::read_to_string(&path).expect("read checkpoint");
        let lines: Vec<&str> = text.lines().collect();
        let mut partial = lines[..5].join("\n");
        partial.push('\n');
        partial.push_str(&lines[5][..lines[5].len() / 2]);
        std::fs::write(&path, &partial).expect("write partial");

        let resumed =
            try_sweep_design_space(&space, Benchmark::Mcf, &opts, Some(&path)).expect("resume");
        assert_eq!(resumed.restored, 4, "header + 4 complete sim records");
        assert_eq!(resumed.simulated, 6);
        for (a, b) in full.results.iter().zip(&resumed.results) {
            assert_eq!(a.cycles, b.cycles, "resumed sweep must match fresh run");
            assert_eq!(a.config, b.config);
        }

        // A second resume restores everything without simulating.
        let again = try_sweep_design_space(&space, Benchmark::Mcf, &opts, Some(&path))
            .expect("second resume");
        assert_eq!(again.restored, 10);
        assert_eq!(again.simulated, 0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn checkpoint_from_different_run_is_rejected() {
        let space =
            DesignSpace::from_configs(DesignSpace::table1_reduced().configs()[..4].to_vec());
        let opts = SimOptions::quick();
        let path = tmp_checkpoint("mismatch.jsonl");
        try_sweep_design_space(&space, Benchmark::Mcf, &opts, Some(&path)).expect("first run");
        // Different benchmark -> typed checkpoint error, not a panic.
        match try_sweep_design_space(&space, Benchmark::Gcc, &opts, Some(&path)) {
            Err(fault::Error::Checkpoint { detail, .. }) => {
                assert!(detail.contains("benchmark"), "{detail}");
            }
            other => panic!("expected Checkpoint error, got {other:?}"),
        }
        // Different instruction budget is also rejected.
        let other_opts = SimOptions {
            instructions: opts.instructions + 1,
            ..opts
        };
        assert!(matches!(
            try_sweep_design_space(&space, Benchmark::Mcf, &other_opts, Some(&path)),
            Err(fault::Error::Checkpoint { .. })
        ));
        let _ = std::fs::remove_file(&path);
    }

    /// Regression (header identity): a checkpoint for a *different* space
    /// of the same size used to resume silently, mixing results from two
    /// lattices. The header's `space_hash` now rejects it.
    #[test]
    fn checkpoint_for_equal_size_different_space_is_rejected() {
        let table = DesignSpace::table1_reduced();
        let space_a = DesignSpace::from_configs(table.configs()[..4].to_vec());
        let space_b = DesignSpace::from_configs(table.configs()[4..8].to_vec());
        assert_eq!(space_a.len(), space_b.len());
        let opts = SimOptions::quick();
        let path = tmp_checkpoint("space-hash.jsonl");
        try_sweep_design_space(&space_a, Benchmark::Mcf, &opts, Some(&path)).expect("first run");
        match try_sweep_design_space(&space_b, Benchmark::Mcf, &opts, Some(&path)) {
            Err(fault::Error::Checkpoint { detail, .. }) => {
                assert!(detail.contains("space_hash"), "{detail}");
            }
            other => panic!("expected Checkpoint error, got {other:?}"),
        }
        // A header predating the space_hash field is rejected too, not
        // silently accepted.
        let text = std::fs::read_to_string(&path).expect("read checkpoint");
        let stripped: Vec<String> = text
            .lines()
            .map(|l| {
                let mut s = l.to_string();
                if let Some(start) = s.find(",\"space_hash\":\"") {
                    let end = s[start + 15..].find('"').map(|e| start + 15 + e + 1);
                    if let Some(end) = end {
                        s.replace_range(start..end, "");
                    }
                }
                s
            })
            .collect();
        std::fs::write(&path, stripped.join("\n") + "\n").expect("write stripped");
        match try_sweep_design_space(&space_a, Benchmark::Mcf, &opts, Some(&path)) {
            Err(fault::Error::Checkpoint { detail, .. }) => {
                assert!(detail.contains("space_hash"), "{detail}");
            }
            other => panic!("expected Checkpoint error, got {other:?}"),
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn simpoint_mode_runs_and_weights_apply() {
        let opts = SimOptions {
            instructions: 3_000,
            use_simpoints: true,
            n_intervals: 6,
            max_k: 3,
            ..Default::default()
        };
        let r = simulate(Benchmark::Gcc, CpuConfig::baseline(), &opts);
        assert!(r.cycles > 0.0);
        assert!(r.stats.instructions > 0);
    }

    #[test]
    fn summary_matches_manual_stats() {
        let space =
            DesignSpace::from_configs(DesignSpace::table1_reduced().configs()[..6].to_vec());
        let results = sweep_design_space(&space, Benchmark::Applu, &SimOptions::quick());
        let s = summarize_sweep(&results);
        let cycles: Vec<f64> = results.iter().map(|r| r.cycles).collect();
        let lo = cycles.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = cycles.iter().cloned().fold(0.0f64, f64::max);
        assert!((s.range - hi / lo).abs() < 1e-12);
        assert!(s.variation >= 0.0);
    }

    #[test]
    fn different_benchmarks_produce_different_cycles() {
        let cfg = CpuConfig::baseline();
        let opts = SimOptions::quick();
        let a = simulate(Benchmark::Applu, cfg, &opts);
        let m = simulate(Benchmark::Mcf, cfg, &opts);
        assert_ne!(a.cycles, m.cycles);
        assert_eq!(a.benchmark, Benchmark::Applu);
        assert_eq!(m.benchmark, Benchmark::Mcf);
    }

    #[test]
    fn cpi_is_positive_and_finite() {
        let r = simulate(
            Benchmark::Equake,
            CpuConfig::baseline(),
            &SimOptions::quick(),
        );
        let cpi = r.cpi();
        assert!(cpi.is_finite() && cpi > 0.0);
    }
}
