//! Branch predictors (Table 1: Perfect, Bimodal, 2-level, Combination).
//!
//! All predictors share the [`BranchPredictor`] interface: predict from a
//! branch identifier, then update with the architectural outcome. Sizing
//! follows SimpleScalar defaults (2K-entry bimodal table, 12-bit global
//! history gshare, 4K-entry chooser for the tournament).

use crate::config::BranchPredictorKind;

/// Common predictor interface.
pub trait BranchPredictor {
    /// Predict taken/not-taken for the branch identified by `id`.
    fn predict(&mut self, id: u32) -> bool;
    /// Inform the predictor of the architectural outcome.
    fn update(&mut self, id: u32, taken: bool);
    /// Statistics: (predictions, mispredictions).
    fn stats(&self) -> (u64, u64);
    /// Record whether the last prediction for `id` was correct; the default
    /// drivers call [`BranchPredictor::resolve`] instead of raw
    /// predict/update so stats stay consistent.
    fn resolve(&mut self, id: u32, taken: bool) -> bool {
        let pred = self.predict(id);
        self.update(id, taken);
        self.record(pred == taken);
        pred == taken
    }
    /// Bump statistics counters.
    fn record(&mut self, correct: bool);
}

/// Saturating 2-bit counter helpers.
#[inline]
fn counter_taken(c: u8) -> bool {
    c >= 2
}

#[inline]
fn counter_update(c: &mut u8, taken: bool) {
    if taken {
        if *c < 3 {
            *c += 1;
        }
    } else if *c > 0 {
        *c -= 1;
    }
}

/// Oracle predictor: consumes the outcome at predict time via `resolve`,
/// never mispredicts.
#[derive(Debug, Default)]
pub struct Perfect {
    lookups: u64,
}

impl BranchPredictor for Perfect {
    fn predict(&mut self, _id: u32) -> bool {
        true // never consulted through `resolve`
    }
    fn update(&mut self, _id: u32, _taken: bool) {}
    fn stats(&self) -> (u64, u64) {
        (self.lookups, 0)
    }
    fn resolve(&mut self, _id: u32, _taken: bool) -> bool {
        self.lookups += 1;
        true
    }
    fn record(&mut self, _correct: bool) {}
}

/// Bimodal: table of 2-bit counters indexed by branch id.
#[derive(Debug)]
pub struct Bimodal {
    table: Vec<u8>,
    mask: u32,
    lookups: u64,
    mispredicts: u64,
}

impl Bimodal {
    /// `entries` must be a power of two (SimpleScalar default 2048).
    pub fn new(entries: usize) -> Self {
        assert!(
            entries.is_power_of_two(),
            "bimodal entries must be a power of two"
        );
        Bimodal {
            table: vec![1; entries], // weakly not-taken
            mask: entries as u32 - 1,
            lookups: 0,
            mispredicts: 0,
        }
    }
}

impl BranchPredictor for Bimodal {
    fn predict(&mut self, id: u32) -> bool {
        counter_taken(self.table[(id & self.mask) as usize])
    }
    fn update(&mut self, id: u32, taken: bool) {
        counter_update(&mut self.table[(id & self.mask) as usize], taken);
    }
    fn stats(&self) -> (u64, u64) {
        (self.lookups, self.mispredicts)
    }
    fn record(&mut self, correct: bool) {
        self.lookups += 1;
        if !correct {
            self.mispredicts += 1;
        }
    }
}

/// Two-level adaptive (gshare): global history XORed with the branch id
/// indexes a pattern-history table of 2-bit counters.
#[derive(Debug)]
pub struct TwoLevel {
    pht: Vec<u8>,
    history: u32,
    history_bits: u32,
    lookups: u64,
    mispredicts: u64,
}

impl TwoLevel {
    /// `history_bits` global history bits; PHT has `2^history_bits`
    /// counters (SimpleScalar default: 12 bits → 4096 entries).
    pub fn new(history_bits: u32) -> Self {
        TwoLevel {
            pht: vec![1; 1 << history_bits],
            history: 0,
            history_bits,
            lookups: 0,
            mispredicts: 0,
        }
    }

    #[inline]
    fn index(&self, id: u32) -> usize {
        let mask = (1u32 << self.history_bits) - 1;
        ((self.history ^ id) & mask) as usize
    }
}

impl BranchPredictor for TwoLevel {
    fn predict(&mut self, id: u32) -> bool {
        counter_taken(self.pht[self.index(id)])
    }
    fn update(&mut self, id: u32, taken: bool) {
        let idx = self.index(id);
        counter_update(&mut self.pht[idx], taken);
        self.history = (self.history << 1) | taken as u32;
    }
    fn stats(&self) -> (u64, u64) {
        (self.lookups, self.mispredicts)
    }
    fn record(&mut self, correct: bool) {
        self.lookups += 1;
        if !correct {
            self.mispredicts += 1;
        }
    }
}

/// Tournament (SimpleScalar "comb"): bimodal + gshare with a per-branch
/// chooser of 2-bit counters that learns which component to trust.
#[derive(Debug)]
pub struct Combination {
    bimodal: Bimodal,
    gshare: TwoLevel,
    chooser: Vec<u8>,
    mask: u32,
    lookups: u64,
    mispredicts: u64,
}

impl Combination {
    /// Build with SimpleScalar-like sizing.
    pub fn new(chooser_entries: usize, bimodal_entries: usize, history_bits: u32) -> Self {
        assert!(
            chooser_entries.is_power_of_two(),
            "chooser entries must be a power of two"
        );
        Combination {
            bimodal: Bimodal::new(bimodal_entries),
            gshare: TwoLevel::new(history_bits),
            chooser: vec![2; chooser_entries], // slight initial gshare bias
            mask: chooser_entries as u32 - 1,
            lookups: 0,
            mispredicts: 0,
        }
    }
}

impl BranchPredictor for Combination {
    fn predict(&mut self, id: u32) -> bool {
        let pb = self.bimodal.predict(id);
        let pg = self.gshare.predict(id);
        let use_gshare = counter_taken(self.chooser[(id & self.mask) as usize]);
        if use_gshare {
            pg
        } else {
            pb
        }
    }
    fn update(&mut self, id: u32, taken: bool) {
        let pb = self.bimodal.predict(id);
        let pg = self.gshare.predict(id);
        // Train the chooser toward the component that was right when they
        // disagree.
        if pb != pg {
            counter_update(&mut self.chooser[(id & self.mask) as usize], pg == taken);
        }
        self.bimodal.update(id, taken);
        self.gshare.update(id, taken);
    }
    fn stats(&self) -> (u64, u64) {
        (self.lookups, self.mispredicts)
    }
    fn record(&mut self, correct: bool) {
        self.lookups += 1;
        if !correct {
            self.mispredicts += 1;
        }
    }
}

/// Instantiate the predictor selected by a configuration, with the
/// project-standard sizing.
pub fn build(kind: BranchPredictorKind) -> Box<dyn BranchPredictor + Send> {
    match kind {
        BranchPredictorKind::Perfect => Box::new(Perfect::default()),
        BranchPredictorKind::Bimodal => Box::new(Bimodal::new(2048)),
        BranchPredictorKind::TwoLevel => Box::new(TwoLevel::new(12)),
        BranchPredictorKind::Combination => Box::new(Combination::new(4096, 2048, 12)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Feed a synthetic branch stream and return accuracy.
    fn accuracy(p: &mut dyn BranchPredictor, stream: &[(u32, bool)]) -> f64 {
        let mut correct = 0usize;
        for &(id, taken) in stream {
            if p.resolve(id, taken) {
                correct += 1;
            }
        }
        correct as f64 / stream.len() as f64
    }

    fn biased_stream(n: usize) -> Vec<(u32, bool)> {
        (0..n).map(|i| ((i % 16) as u32, true)).collect()
    }

    /// A single alternating branch: T,N,T,N…
    fn alternating_stream(n: usize) -> Vec<(u32, bool)> {
        (0..n).map(|i| (7u32, i % 2 == 0)).collect()
    }

    #[test]
    fn perfect_never_mispredicts() {
        let mut p = Perfect::default();
        let s: Vec<(u32, bool)> = (0..1000).map(|i| (i as u32 % 64, i % 3 == 0)).collect();
        assert_eq!(accuracy(&mut p, &s), 1.0);
        assert_eq!(p.stats(), (1000, 0));
    }

    #[test]
    fn bimodal_learns_bias() {
        let mut p = Bimodal::new(2048);
        let acc = accuracy(&mut p, &biased_stream(4000));
        assert!(acc > 0.98, "bimodal accuracy on biased stream: {acc}");
    }

    #[test]
    fn bimodal_fails_on_alternation() {
        let mut p = Bimodal::new(2048);
        let acc = accuracy(&mut p, &alternating_stream(4000));
        assert!(
            acc < 0.65,
            "bimodal should struggle on T/N alternation: {acc}"
        );
    }

    #[test]
    fn gshare_learns_alternation() {
        let mut p = TwoLevel::new(12);
        let acc = accuracy(&mut p, &alternating_stream(4000));
        assert!(acc > 0.95, "gshare accuracy on alternation: {acc}");
    }

    #[test]
    fn combination_tracks_best_component() {
        // Mixture: one alternating branch (gshare wins) + 15 biased branches
        // (both fine). The tournament should approach gshare-level accuracy.
        let mut stream = Vec::new();
        for i in 0..8000usize {
            if i % 4 == 0 {
                stream.push((99u32, (i / 4) % 2 == 0));
            } else {
                stream.push(((i % 15) as u32, true));
            }
        }
        let mut combo = Combination::new(4096, 2048, 12);
        let acc_combo = accuracy(&mut combo, &stream);
        let mut bim = Bimodal::new(2048);
        let acc_bim = accuracy(&mut bim, &stream);
        assert!(
            acc_combo > acc_bim,
            "tournament ({acc_combo}) should beat bimodal ({acc_bim})"
        );
        assert!(acc_combo > 0.9);
    }

    #[test]
    fn build_matches_kind() {
        for kind in BranchPredictorKind::ALL {
            let mut p = build(kind);
            // Must at least function.
            let _ = p.resolve(1, true);
            let (lookups, _) = p.stats();
            assert_eq!(lookups, 1);
        }
    }

    #[test]
    fn stats_count_mispredicts() {
        let mut p = Bimodal::new(16);
        // Counter starts weakly-not-taken; first taken prediction is wrong.
        p.resolve(0, true);
        let (l, m) = p.stats();
        assert_eq!(l, 1);
        assert_eq!(m, 1);
    }
}
