//! Cycle-level out-of-order pipeline model.
//!
//! The core follows SimpleScalar's `sim-outorder` structure: a unified
//! Register Update Unit (RUU, the combined ROB/reservation stations) plus a
//! load/store queue, fed by a width-limited front end with an I-cache and a
//! branch predictor, draining through per-class functional units into
//! width-limited in-order commit.
//!
//! Each simulated cycle performs, in order: **commit** (retire completed
//! instructions from the RUU head), **issue** (wake ready instructions,
//! allocate functional units, launch D-cache accesses), and
//! **fetch/dispatch** (pull instructions from the trace through the I-cache
//! into the RUU, resolving branch predictions). Mispredicted branches block
//! further correct-path fetch until they execute, after which a front-end
//! refill penalty applies; meanwhile the front end chews through wrong-path
//! instructions, polluting the I-cache (and, when `issue_wrong_path` is
//! set, the data hierarchy too — SimpleScalar's wrong-path issue mode).

use crate::bpred::{self, BranchPredictor};
use crate::cache::{Cache, Hierarchy, LatencyModel};
use crate::config::CpuConfig;
use crate::prefetch::{self, Prefetcher, PrefetcherKind};
use crate::tlb::Tlb;
use crate::trace::{Inst, InstSource, OpClass};
use std::collections::VecDeque;

/// Execution latencies per op class (SimpleScalar defaults).
fn op_latency(op: OpClass) -> u32 {
    match op {
        OpClass::IAlu | OpClass::Branch => 1,
        OpClass::IMult => 3,
        OpClass::FpAlu => 2,
        OpClass::FpMult => 4,
        OpClass::Load => 1,  // address generation; cache latency added at issue
        OpClass::Store => 1, // retires through the LSQ
    }
}

/// Per-cycle functional-unit availability tracker.
#[derive(Debug, Default)]
struct FuBusy {
    ialu: u8,
    imult: u8,
    memport: u8,
    fpalu: u8,
    fpmult: u8,
}

impl FuBusy {
    fn reset(&mut self) {
        *self = FuBusy::default();
    }

    /// Try to claim a unit for `op`; returns false if the class is saturated
    /// this cycle.
    fn try_claim(&mut self, op: OpClass, fu: &crate::config::FuConfig) -> bool {
        match op {
            OpClass::IAlu | OpClass::Branch => {
                if self.ialu < fu.ialu {
                    self.ialu += 1;
                    true
                } else {
                    false
                }
            }
            OpClass::IMult => {
                if self.imult < fu.imult {
                    self.imult += 1;
                    true
                } else {
                    false
                }
            }
            OpClass::FpAlu => {
                if self.fpalu < fu.fpalu {
                    self.fpalu += 1;
                    true
                } else {
                    false
                }
            }
            OpClass::FpMult => {
                if self.fpmult < fu.fpmult {
                    self.fpmult += 1;
                    true
                } else {
                    false
                }
            }
            OpClass::Load | OpClass::Store => {
                if self.memport < fu.memport {
                    self.memport += 1;
                    true
                } else {
                    false
                }
            }
        }
    }
}

/// One RUU entry.
#[derive(Debug, Clone, Copy)]
struct RuuEntry {
    seq: u64,
    op: OpClass,
    /// Producer sequence numbers (u64::MAX = no dependency).
    prod1: u64,
    prod2: u64,
    addr: u64,
    issued: bool,
    /// Completion cycle once issued (u64::MAX before).
    done_at: u64,
    is_mem: bool,
}

/// Counters reported by one simulation run.
#[derive(Debug, Clone, Default)]
pub struct PipelineStats {
    /// Total simulated cycles.
    pub cycles: u64,
    /// Committed (architectural) instructions.
    pub instructions: u64,
    /// L1 D-cache accesses/misses.
    pub l1d_accesses: u64,
    /// L1 D-cache misses.
    pub l1d_misses: u64,
    /// L1 I-cache accesses.
    pub l1i_accesses: u64,
    /// L1 I-cache misses.
    pub l1i_misses: u64,
    /// Unified L2 accesses.
    pub l2_accesses: u64,
    /// Unified L2 misses.
    pub l2_misses: u64,
    /// L3 accesses (0 when absent).
    pub l3_accesses: u64,
    /// L3 misses.
    pub l3_misses: u64,
    /// D-TLB misses.
    pub dtlb_misses: u64,
    /// I-TLB misses.
    pub itlb_misses: u64,
    /// Branch instructions resolved.
    pub branches: u64,
    /// Mispredicted branches.
    pub mispredicts: u64,
}

impl PipelineStats {
    /// Counter-wise difference `self - earlier`: the statistics of the
    /// execution slice between two snapshots. Used for warm-up-excluded
    /// measurement (SimPoint practice: warm the caches, then measure).
    pub fn delta(&self, earlier: &PipelineStats) -> PipelineStats {
        PipelineStats {
            cycles: self.cycles - earlier.cycles,
            instructions: self.instructions - earlier.instructions,
            l1d_accesses: self.l1d_accesses - earlier.l1d_accesses,
            l1d_misses: self.l1d_misses - earlier.l1d_misses,
            l1i_accesses: self.l1i_accesses - earlier.l1i_accesses,
            l1i_misses: self.l1i_misses - earlier.l1i_misses,
            l2_accesses: self.l2_accesses - earlier.l2_accesses,
            l2_misses: self.l2_misses - earlier.l2_misses,
            l3_accesses: self.l3_accesses - earlier.l3_accesses,
            l3_misses: self.l3_misses - earlier.l3_misses,
            dtlb_misses: self.dtlb_misses - earlier.dtlb_misses,
            itlb_misses: self.itlb_misses - earlier.itlb_misses,
            branches: self.branches - earlier.branches,
            mispredicts: self.mispredicts - earlier.mispredicts,
        }
    }

    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// Branch misprediction rate.
    pub fn mispredict_rate(&self) -> f64 {
        if self.branches == 0 {
            0.0
        } else {
            self.mispredicts as f64 / self.branches as f64
        }
    }
}

/// The configured pipeline, ready to consume a trace.
pub struct Core {
    config: CpuConfig,
    latency: LatencyModel,
    icache: Hierarchy,
    dcache: Hierarchy,
    l2: Cache,
    l3: Option<Cache>,
    itlb: Tlb,
    dtlb: Tlb,
    bpred: Box<dyn BranchPredictor + Send>,
    ruu: VecDeque<RuuEntry>,
    lsq_used: u32,
    /// Completion cycles ring, indexed by seq % RING.
    done_ring: Vec<u64>,
    cycle: u64,
    next_seq: u64,
    committed: u64,
    /// Fetch blocked until the branch with this seq resolves.
    blocked_on_branch: Option<u64>,
    /// Front end may not fetch before this cycle (I-miss or refill).
    fetch_resume_at: u64,
    /// I-cache line of the most recent fetch (new line => new access).
    last_fetch_line: u64,
    /// Optional data-side prefetcher (library extension; None reproduces
    /// the paper's configuration).
    dpref: Option<Box<dyn Prefetcher + Send>>,
}

/// Size of the completion ring. Must exceed RUU size + max dep distance.
const RING: usize = 1024;
/// Front-end refill penalty after a mispredict resolves, in cycles.
const REFILL_PENALTY: u64 = 3;
/// Maximum unissued RUU entries the scheduler examines per cycle.
const ISSUE_SCAN: usize = 64;

impl Core {
    /// Build a core for a configuration.
    pub fn new(config: CpuConfig) -> Self {
        Core {
            latency: LatencyModel::default(),
            icache: Hierarchy::new(config.l1i),
            dcache: Hierarchy::new(config.l1d),
            l2: Cache::new(config.l2),
            l3: config.l3.map(Cache::new),
            itlb: Tlb::new(config.itlb_kb),
            dtlb: Tlb::new(config.dtlb_kb),
            bpred: bpred::build(config.bpred),
            ruu: VecDeque::with_capacity(config.ruu_size as usize),
            lsq_used: 0,
            done_ring: vec![0; RING],
            cycle: 0,
            next_seq: 0,
            committed: 0,
            blocked_on_branch: None,
            fetch_resume_at: 0,
            last_fetch_line: u64::MAX,
            dpref: None,
            config,
        }
    }

    /// Build a core with a data-side prefetcher attached.
    pub fn with_prefetcher(config: CpuConfig, kind: PrefetcherKind) -> Self {
        let mut core = Core::new(config);
        core.dpref = prefetch::build(kind, config.l1d.line_b);
        core
    }

    /// Prefetches issued so far (0 without a prefetcher).
    pub fn prefetches_issued(&self) -> u64 {
        self.dpref.as_ref().map_or(0, |p| p.issued())
    }

    /// Run `n_insts` architectural instructions from any instruction
    /// source and drain the pipeline. Returns the collected statistics.
    pub fn run<S: InstSource>(&mut self, gen: &mut S, n_insts: u64) -> PipelineStats {
        let mut remaining = n_insts;
        let mut pending: Option<Inst> = None;
        let mut fu = FuBusy::default();
        // Hard safety valve: no realistic config needs more than ~1000
        // cycles per instruction.
        let max_cycles = n_insts.saturating_mul(1000).max(10_000);

        while (remaining > 0 || pending.is_some() || !self.ruu.is_empty())
            && self.cycle < max_cycles
        {
            fu.reset();
            self.commit();
            self.issue(&mut fu);
            self.fetch_dispatch(gen, &mut remaining, &mut pending, &mut fu);
            self.cycle += 1;
        }
        self.stats()
    }

    /// Run `warmup` instructions (warming caches, TLBs, and predictor
    /// tables), then `measure` instructions, returning only the measured
    /// slice's statistics.
    pub fn run_with_warmup<S: InstSource>(
        &mut self,
        gen: &mut S,
        warmup: u64,
        measure: u64,
    ) -> PipelineStats {
        let _ = self.run(gen, warmup);
        let before = self.stats();
        let after = self.run(gen, measure);
        after.delta(&before)
    }

    /// Gather statistics from all components.
    pub fn stats(&self) -> PipelineStats {
        let (branches, mispredicts) = self.bpred.stats();
        PipelineStats {
            cycles: self.cycle,
            instructions: self.committed,
            l1d_accesses: self.dcache.l1.accesses(),
            l1d_misses: self.dcache.l1.misses(),
            l1i_accesses: self.icache.l1.accesses(),
            l1i_misses: self.icache.l1.misses(),
            l2_accesses: self.l2.accesses(),
            l2_misses: self.l2.misses(),
            l3_accesses: self.l3.as_ref().map_or(0, |c| c.accesses()),
            l3_misses: self.l3.as_ref().map_or(0, |c| c.misses()),
            dtlb_misses: self.dtlb.misses(),
            itlb_misses: self.itlb.misses(),
            branches,
            mispredicts,
        }
    }

    /// In-order retirement of completed instructions, up to `width` per
    /// cycle.
    fn commit(&mut self) {
        let mut retired = 0;
        while retired < self.config.width as usize {
            match self.ruu.front() {
                Some(e) if e.issued && e.done_at <= self.cycle => {
                    if e.is_mem {
                        self.lsq_used -= 1;
                    }
                    self.ruu.pop_front();
                    self.committed += 1;
                    retired += 1;
                }
                _ => break,
            }
        }
    }

    /// True when the producer with sequence number `prod` has completed.
    fn producer_done(&self, prod: u64) -> bool {
        if prod == u64::MAX {
            return true;
        }
        // Committed producers left the RUU; their slot in the ring holds the
        // completion cycle. In-flight producers are found in the ring too —
        // entries are written at issue time. Unissued producers hold
        // u64::MAX.
        self.done_ring[(prod % RING as u64) as usize] <= self.cycle
    }

    /// Wake and issue ready instructions (oldest first), bounded by issue
    /// width and functional-unit availability. The scheduler examines at
    /// most [`ISSUE_SCAN`] not-yet-issued entries per cycle — real wakeup
    /// logic has bounded fan-in, and this keeps per-cycle work O(window)
    /// instead of O(RUU).
    fn issue(&mut self, fu: &mut FuBusy) {
        let mut issued = 0;
        let mut scanned = 0;
        let width = self.config.width as usize;
        for idx in 0..self.ruu.len() {
            if issued >= width || scanned >= ISSUE_SCAN {
                break;
            }
            let e = self.ruu[idx];
            if e.issued {
                continue;
            }
            scanned += 1;
            if !(self.producer_done(e.prod1) && self.producer_done(e.prod2)) {
                continue;
            }
            if !fu.try_claim(e.op, &self.config.fu) {
                continue;
            }
            let mut lat = op_latency(e.op);
            if e.op == OpClass::Load {
                if !self.dtlb.access(e.addr) {
                    lat += self.latency.tlb_miss;
                }
                let level = self.dcache.access(e.addr, &mut self.l2, self.l3.as_mut());
                lat += self.latency.for_level(level);
                // Prefetcher observes the demand stream (keyed by the
                // issuing block, standing in for the load PC) and installs
                // predicted lines off the critical path.
                if let Some(pf) = self.dpref.as_mut() {
                    let miss = level != crate::cache::HierLevel::L1;
                    // Stream id: the 4 KB page, a PC-free stand-in that
                    // keeps strided walks within one stream.
                    let targets = pf.observe((e.addr >> 12) as u32, e.addr, miss);
                    for t in targets {
                        let _ = self.dcache.access(t, &mut self.l2, self.l3.as_mut());
                    }
                }
            } else if e.op == OpClass::Store {
                // Stores translate and touch the cache for ownership but
                // retire without waiting on the memory latency.
                if !self.dtlb.access(e.addr) {
                    lat += self.latency.tlb_miss;
                }
                let _ = self.dcache.access(e.addr, &mut self.l2, self.l3.as_mut());
            }
            let done = self.cycle + lat as u64;
            let entry = &mut self.ruu[idx];
            entry.issued = true;
            entry.done_at = done;
            self.done_ring[(e.seq % RING as u64) as usize] = done;
            issued += 1;
        }
        // If fetch is blocked on a mispredicted branch that has now
        // executed, schedule the front-end restart.
        if let Some(bseq) = self.blocked_on_branch {
            let done = self.done_ring[(bseq % RING as u64) as usize];
            if done <= self.cycle {
                self.blocked_on_branch = None;
                self.fetch_resume_at = self.fetch_resume_at.max(done + REFILL_PENALTY);
            }
        }
    }

    /// Access the instruction-fetch path for `code_addr`; returns the stall
    /// the front end suffers (0 on an L1I + I-TLB hit).
    fn ifetch_access(&mut self, code_addr: u64) -> u64 {
        let line = code_addr >> self.config.l1i.line_b.trailing_zeros();
        if line == self.last_fetch_line {
            return 0;
        }
        self.last_fetch_line = line;
        let mut stall = 0u64;
        if !self.itlb.access(code_addr) {
            stall += self.latency.tlb_miss as u64;
        }
        let level = self
            .icache
            .access(code_addr, &mut self.l2, self.l3.as_mut());
        if level != crate::cache::HierLevel::L1 {
            stall += self.latency.for_level(level) as u64;
        }
        stall
    }

    /// Fetch up to `width` instructions and dispatch them into the RUU.
    fn fetch_dispatch<S: InstSource>(
        &mut self,
        gen: &mut S,
        remaining: &mut u64,
        pending: &mut Option<Inst>,
        fu: &mut FuBusy,
    ) {
        let _ = fu;
        if self.cycle < self.fetch_resume_at {
            return;
        }
        if self.blocked_on_branch.is_some() {
            // The front end always speculates down the (wrong) predicted
            // path — one fetch group (a single I-cache line) per cycle,
            // polluting the I-side. SimpleScalar's wrong-path *issue* flag
            // additionally lets those instructions execute, which we model
            // as wrong-path loads touching the data hierarchy.
            let wp = gen.fetch_wrong_path();
            let stall = self.ifetch_access(wp.code_addr());
            if stall > 0 {
                self.fetch_resume_at = self.cycle + stall;
                return;
            }
            if self.config.issue_wrong_path && wp.op == OpClass::Load {
                let _ = self.dtlb.access(wp.addr);
                let _ = self.dcache.access(wp.addr, &mut self.l2, self.l3.as_mut());
            }
            return;
        }

        for _ in 0..self.config.width {
            // Obtain the next architectural instruction.
            let inst = match pending.take() {
                Some(i) => i,
                None => {
                    if *remaining == 0 {
                        return;
                    }
                    *remaining -= 1;
                    gen.fetch()
                }
            };

            // Structural hazards: RUU and LSQ occupancy.
            let is_mem = matches!(inst.op, OpClass::Load | OpClass::Store);
            if self.ruu.len() >= self.config.ruu_size as usize
                || (is_mem && self.lsq_used >= self.config.lsq_size)
            {
                *pending = Some(inst);
                return;
            }

            // Instruction fetch. On an I-side miss the instruction waits in
            // `pending` and dispatches when the line arrives (the miss has
            // already allocated it, so the retry hits).
            let stall = self.ifetch_access(inst.code_addr());
            if stall > 0 {
                self.fetch_resume_at = self.cycle + stall;
                *pending = Some(inst);
                return;
            }

            let seq = self.next_seq;
            self.next_seq += 1;
            // Producers must still be "recent" enough to resolve through the
            // ring; the trace generator bounds distances at 64. A distance
            // reaching before the trace start means the value was live-in:
            // no dependency (u64::MAX), never "instruction 0".
            let prod = |d: u16| {
                if d == 0 {
                    u64::MAX
                } else {
                    seq.checked_sub(d as u64).unwrap_or(u64::MAX)
                }
            };
            // Mark as not-done until issued.
            self.done_ring[(seq % RING as u64) as usize] = u64::MAX;
            self.ruu.push_back(RuuEntry {
                seq,
                op: inst.op,
                prod1: prod(inst.dep1),
                prod2: prod(inst.dep2),
                addr: inst.addr,
                issued: false,
                done_at: u64::MAX,
                is_mem,
            });
            if is_mem {
                self.lsq_used += 1;
            }

            // Branch prediction at dispatch; mispredicts block further
            // correct-path fetch until the branch executes.
            if inst.op == OpClass::Branch {
                let correct = self.bpred.resolve(inst.branch_id, inst.taken);
                if !correct {
                    self.blocked_on_branch = Some(seq);
                    return;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{BranchPredictorKind, CpuConfig};
    use crate::trace::TraceGenerator;
    use crate::workload::Benchmark;

    fn run_config(b: Benchmark, cfg: CpuConfig, n: u64, seed: u64) -> PipelineStats {
        let mut gen = TraceGenerator::for_benchmark(b, seed);
        let mut core = Core::new(cfg);
        core.run(&mut gen, n)
    }

    #[test]
    fn commits_every_instruction() {
        let s = run_config(Benchmark::Applu, CpuConfig::baseline(), 20_000, 1);
        assert_eq!(s.instructions, 20_000);
        assert!(s.cycles > 0);
    }

    #[test]
    fn ipc_is_plausible() {
        let s = run_config(Benchmark::Applu, CpuConfig::baseline(), 30_000, 2);
        let ipc = s.ipc();
        assert!(ipc > 0.1 && ipc <= 4.0, "IPC {ipc} out of plausible range");
    }

    #[test]
    fn perfect_predictor_is_at_least_as_fast() {
        let mut cfg = CpuConfig::baseline();
        cfg.bpred = BranchPredictorKind::Bimodal;
        let s_bim = run_config(Benchmark::Gcc, cfg, 30_000, 3);
        cfg.bpred = BranchPredictorKind::Perfect;
        let s_perf = run_config(Benchmark::Gcc, cfg, 30_000, 3);
        assert_eq!(s_perf.mispredicts, 0);
        assert!(
            s_perf.cycles <= s_bim.cycles,
            "perfect {} vs bimodal {}",
            s_perf.cycles,
            s_bim.cycles
        );
    }

    #[test]
    fn bigger_l1d_not_slower_for_cache_bound_app() {
        let mut small = CpuConfig::baseline();
        small.l1d.size_kb = 16;
        let mut large = CpuConfig::baseline();
        large.l1d.size_kb = 64;
        let s_small = run_config(Benchmark::Mcf, small, 30_000, 4);
        let s_large = run_config(Benchmark::Mcf, large, 30_000, 4);
        assert!(s_large.l1d_misses <= s_small.l1d_misses);
        assert!(
            s_large.cycles <= s_small.cycles + s_small.cycles / 20,
            "64KB L1D ({}) should not be materially slower than 16KB ({})",
            s_large.cycles,
            s_small.cycles
        );
    }

    #[test]
    fn l3_helps_memory_bound_app() {
        let mut no_l3 = CpuConfig::baseline();
        no_l3.l3 = None;
        let mut with_l3 = CpuConfig::baseline();
        with_l3.l3 = Some(crate::config::CacheGeometry {
            size_kb: 8192,
            line_b: 256,
            assoc: 8,
        });
        let s_no = run_config(Benchmark::Mcf, no_l3, 30_000, 5);
        let s_yes = run_config(Benchmark::Mcf, with_l3, 30_000, 5);
        assert!(
            s_yes.cycles < s_no.cycles,
            "L3 should speed up mcf: {} vs {}",
            s_yes.cycles,
            s_no.cycles
        );
    }

    #[test]
    fn wider_machine_not_slower() {
        let mut narrow = CpuConfig::baseline();
        narrow.width = 4;
        narrow.fu = crate::config::FuConfig::NARROW;
        let mut wide = narrow;
        wide.width = 8;
        wide.fu = crate::config::FuConfig::WIDE;
        let s_n = run_config(Benchmark::Swim, narrow, 30_000, 6);
        let s_w = run_config(Benchmark::Swim, wide, 30_000, 6);
        // Allow a sliver of slack: issue-order differences perturb LRU
        // state, so the wide machine can be epsilon slower on short runs.
        assert!(
            s_w.cycles <= s_n.cycles + s_n.cycles / 100,
            "8-wide ({}) should not be materially slower than 4-wide ({})",
            s_w.cycles,
            s_n.cycles
        );
    }

    #[test]
    fn mcf_slower_than_applu_per_instruction() {
        let s_applu = run_config(Benchmark::Applu, CpuConfig::baseline(), 30_000, 7);
        let s_mcf = run_config(Benchmark::Mcf, CpuConfig::baseline(), 30_000, 7);
        assert!(
            s_mcf.ipc() < s_applu.ipc(),
            "mcf IPC {} should trail applu IPC {}",
            s_mcf.ipc(),
            s_applu.ipc()
        );
    }

    #[test]
    fn stats_internally_consistent() {
        let s = run_config(Benchmark::Gcc, CpuConfig::baseline(), 20_000, 8);
        assert!(s.l1d_misses <= s.l1d_accesses);
        assert!(s.l1i_misses <= s.l1i_accesses);
        assert!(s.l2_misses <= s.l2_accesses);
        assert!(s.mispredicts <= s.branches);
        // L2 is fed only by L1 misses.
        assert!(s.l2_accesses <= s.l1d_misses + s.l1i_misses);
    }

    #[test]
    fn stride_prefetcher_helps_streaming_workload() {
        use crate::prefetch::PrefetcherKind;
        // applu streams with a constant stride: the stride prefetcher
        // should reduce cycles (or at worst stay within noise).
        let n = 30_000;
        let mut gen = TraceGenerator::for_benchmark(Benchmark::Applu, 31);
        let mut plain = Core::new(CpuConfig::baseline());
        let s_plain = plain.run(&mut gen, n);

        let mut gen = TraceGenerator::for_benchmark(Benchmark::Applu, 31);
        let mut pref = Core::with_prefetcher(CpuConfig::baseline(), PrefetcherKind::Stride);
        let s_pref = pref.run(&mut gen, n);
        assert!(
            pref.prefetches_issued() > 0,
            "prefetcher must fire on applu"
        );
        assert!(
            s_pref.cycles <= s_plain.cycles + s_plain.cycles / 50,
            "stride prefetch should not hurt a streaming workload: {} vs {}",
            s_pref.cycles,
            s_plain.cycles
        );
    }

    #[test]
    fn no_prefetcher_matches_default_core() {
        let n = 10_000;
        let mut g1 = TraceGenerator::for_benchmark(Benchmark::Mesa, 5);
        let mut g2 = TraceGenerator::for_benchmark(Benchmark::Mesa, 5);
        let a = Core::new(CpuConfig::baseline()).run(&mut g1, n);
        let b = Core::with_prefetcher(CpuConfig::baseline(), crate::prefetch::PrefetcherKind::None)
            .run(&mut g2, n);
        assert_eq!(a.cycles, b.cycles);
    }

    #[test]
    fn warmup_excludes_cold_misses() {
        let mut gen_cold = TraceGenerator::for_benchmark(Benchmark::Equake, 21);
        let mut cold = Core::new(CpuConfig::baseline());
        let s_cold = cold.run(&mut gen_cold, 10_000);

        let mut gen_warm = TraceGenerator::for_benchmark(Benchmark::Equake, 21);
        let mut warm = Core::new(CpuConfig::baseline());
        let s_warm = warm.run_with_warmup(&mut gen_warm, 10_000, 10_000);
        assert_eq!(s_warm.instructions, 10_000);
        // Warm measurement must show a lower miss rate than the cold run.
        let mr = |s: &PipelineStats| s.l1d_misses as f64 / s.l1d_accesses.max(1) as f64;
        assert!(
            mr(&s_warm) <= mr(&s_cold),
            "warm {} vs cold {}",
            mr(&s_warm),
            mr(&s_cold)
        );
    }

    #[test]
    fn deterministic_across_runs() {
        let a = run_config(Benchmark::Mesa, CpuConfig::baseline(), 15_000, 9);
        let b = run_config(Benchmark::Mesa, CpuConfig::baseline(), 15_000, 9);
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.l1d_misses, b.l1d_misses);
        assert_eq!(a.mispredicts, b.mispredicts);
    }
}
