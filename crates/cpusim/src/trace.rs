//! Deterministic synthetic instruction-trace generation.
//!
//! A [`TraceGenerator`] turns a [`WorkloadProfile`] plus a `u64` seed into an
//! unbounded instruction stream. Two properties matter for the study:
//!
//! 1. **Config-independence** — the stream depends only on (benchmark,
//!    seed). Every design point replays the *same* trace, so cycle-count
//!    differences across the design space are caused by the configuration,
//!    never by trace noise (the paper gets this for free by replaying the
//!    same SimPoint interval).
//! 2. **Structured behaviour** — phases, basic-block locality, branch
//!    populations with distinct predictability classes, and a mixture of
//!    strided and Zipf-random memory access give the simulator the same
//!    levers real SPEC applications pull.

use crate::workload::{Phase, WorkloadProfile};
use linalg::dist::{child_seed, seeded_rng, Zipf};
use rand::rngs::StdRng;
use rand::Rng;

/// Instruction class, mirroring SimpleScalar's functional-unit classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpClass {
    /// Integer ALU op (latency 1).
    IAlu,
    /// Integer multiply (latency 3).
    IMult,
    /// FP add/compare (latency 2).
    FpAlu,
    /// FP multiply/divide (latency 4).
    FpMult,
    /// Memory load.
    Load,
    /// Memory store.
    Store,
    /// Conditional branch.
    Branch,
}

/// One dynamic instruction.
#[derive(Debug, Clone, Copy)]
pub struct Inst {
    /// Operation class.
    pub op: OpClass,
    /// Distance (in dynamic instructions) to the first producer; 0 = none.
    pub dep1: u16,
    /// Distance to the second producer; 0 = none.
    pub dep2: u16,
    /// Byte address for loads/stores (0 otherwise).
    pub addr: u64,
    /// Basic-block id (drives the I-cache address and the BBV).
    pub block: u32,
    /// Instruction's byte offset within its block's code region.
    pub code_offset: u32,
    /// For branches: static branch id (equals the block it terminates).
    pub branch_id: u32,
    /// For branches: architectural outcome.
    pub taken: bool,
}

impl Inst {
    /// Instruction-fetch byte address. Blocks occupy disjoint 256-byte code
    /// regions, so total code footprint is `code_blocks * 256` bytes.
    pub(crate) fn code_addr(&self) -> u64 {
        self.block as u64 * CODE_BLOCK_BYTES + (self.code_offset as u64 % CODE_BLOCK_BYTES)
    }
}

/// Bytes of code address space reserved per basic block.
pub(crate) const CODE_BLOCK_BYTES: u64 = 256;

/// Anything the pipeline can fetch instructions from: a live
/// [`TraceGenerator`] or a materialized [`ReplaySource`] buffer (used by the
/// parallel design-space sweep so every configuration replays byte-identical
/// instructions without regenerating them).
pub trait InstSource {
    /// Next architectural instruction.
    fn fetch(&mut self) -> Inst;
    /// Next wrong-path (squashed) instruction; must not perturb the
    /// architectural stream.
    fn fetch_wrong_path(&mut self) -> Inst;
}

impl InstSource for TraceGenerator {
    fn fetch(&mut self) -> Inst {
        self.next_inst()
    }
    fn fetch_wrong_path(&mut self) -> Inst {
        self.wrong_path_inst()
    }
}

/// Replays a materialized instruction slice; wrong-path instructions are
/// synthesized from a cheap xorshift stream over the observed footprint.
pub struct ReplaySource<'a> {
    insts: &'a [Inst],
    pos: usize,
    wp_state: u64,
    /// Exclusive upper bound of data addresses for wrong-path loads.
    data_bound: u64,
    /// Exclusive upper bound of block ids for wrong-path fetches.
    block_bound: u32,
}

impl<'a> ReplaySource<'a> {
    /// Wrap a trace slice. `wp_seed` feeds the wrong-path stream.
    pub fn new(insts: &'a [Inst], wp_seed: u64) -> Self {
        let data_bound = insts.iter().map(|i| i.addr).max().unwrap_or(0).max(4096) + 64;
        let block_bound = insts.iter().map(|i| i.block).max().unwrap_or(0) + 1;
        ReplaySource {
            insts,
            pos: 0,
            wp_state: wp_seed | 1,
            data_bound,
            block_bound,
        }
    }

    /// Instructions remaining.
    pub fn remaining(&self) -> usize {
        self.insts.len() - self.pos
    }

    #[inline]
    fn next_wp_u64(&mut self) -> u64 {
        // xorshift64*.
        let mut x = self.wp_state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.wp_state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

impl InstSource for ReplaySource<'_> {
    fn fetch(&mut self) -> Inst {
        // Wrap around if the pipeline asks for more than the buffer holds
        // (callers size runs to the buffer, so wrap-around is a safety net).
        let i = self.insts[self.pos % self.insts.len()];
        self.pos += 1;
        i
    }

    fn fetch_wrong_path(&mut self) -> Inst {
        let r = self.next_wp_u64();
        let op = match r % 4 {
            0 | 1 => OpClass::IAlu,
            2 => OpClass::Load,
            _ => OpClass::Branch,
        };
        let addr = if op == OpClass::Load {
            (r >> 8) % self.data_bound
        } else {
            0
        };
        let block = ((r >> 32) as u32) % self.block_bound;
        Inst {
            op,
            dep1: 1,
            dep2: 0,
            addr,
            block,
            code_offset: 0,
            branch_id: block,
            taken: false,
        }
    }
}

/// Behavioural class of a static branch (derived from the profile's
/// [`crate::workload::BranchMix`]).
#[derive(Debug, Clone, Copy, PartialEq)]
enum BranchClass {
    /// Taken (or not) with probability 0.95.
    Biased { taken_mostly: bool },
    /// Loop-style pattern: taken `period-1` times, then one not-taken exit
    /// (inverted for some branches). Per-branch counters mispredict the
    /// exits (~1/period); history predictors can learn them.
    Patterned { period: u8, inverted: bool },
    /// Coin flip with a per-branch bias — hard for every table-based
    /// predictor, trivial only for the oracle.
    Random { taken_p: f64 },
}

/// Per-phase derived sampling state.
struct PhaseState {
    /// The phase description.
    phase: Phase,
    /// Zipf sampler over this phase's data lines.
    data_zipf: Zipf,
    /// Number of 64-byte data lines in this phase's footprint.
    data_lines: u64,
    /// Effective random-access fraction.
    randomness: f64,
    /// Zipf sampler over basic blocks.
    block_zipf: Zipf,
}

/// Deterministic instruction stream for one (benchmark, seed) pair.
pub struct TraceGenerator {
    profile: WorkloadProfile,
    rng: StdRng,
    /// Independent stream for wrong-path (squashed) instructions so that
    /// config-dependent wrong-path fetch cannot perturb the architectural
    /// stream.
    wp_rng: StdRng,
    phases: Vec<PhaseState>,
    /// Total instructions per phase superperiod.
    superperiod: u64,
    /// Cumulative phase segment boundaries within a superperiod.
    seg_bounds: Vec<u64>,
    /// Dynamic instruction index.
    index: u64,
    /// Current basic block (includes phase offset).
    block: u32,
    /// Instruction offset within the current block.
    block_offset: u32,
    /// Class of each static branch, indexed by raw branch id.
    branch_class: Vec<BranchClass>,
    /// Per-branch dynamic occurrence counters (for pattern phase).
    branch_occ: Vec<u32>,
    /// Sequential-walker position in bytes.
    seq_pos: u64,
    /// Distance since the last load (for dependent-load chains).
    since_last_load: u16,
    /// Scatter multiplier mixing Zipf ranks onto footprint lines.
    scatter_salt: u64,
}

impl TraceGenerator {
    /// Build a generator. The profile is validated eagerly.
    pub fn new(profile: WorkloadProfile, seed: u64) -> Self {
        profile.validate();
        let rng = seeded_rng(child_seed(seed, 0x7ace));
        let wp_rng = seeded_rng(child_seed(seed, 0xbad0));

        // Phase-derived samplers. Segment lengths are proportional to phase
        // weights over a superperiod of phases.len() * phase_len.
        let superperiod = profile.phase_len * profile.phases.len() as u64;
        let mut phases = Vec::with_capacity(profile.phases.len());
        let mut seg_bounds = Vec::with_capacity(profile.phases.len());
        let mut acc = 0u64;
        for ph in &profile.phases {
            let footprint =
                ((profile.data_footprint as f64) * ph.footprint_scale).max(4096.0) as u64;
            let data_lines = (footprint / 64).max(1);
            // Cap the Zipf table so pathological footprints stay cheap; ranks
            // are scattered across the full footprint below.
            let zipf_n = data_lines.min(1 << 20) as usize;
            let data_zipf = Zipf::new(zipf_n, profile.data_zipf_s);
            let block_zipf = Zipf::new(profile.code_blocks as usize, profile.code_zipf_s);
            let seg_len = ((superperiod as f64) * ph.weight).round().max(1.0) as u64;
            acc += seg_len;
            seg_bounds.push(acc);
            phases.push(PhaseState {
                phase: *ph,
                data_zipf,
                data_lines,
                randomness: (profile.data_randomness * ph.randomness_scale).clamp(0.0, 1.0),
                block_zipf,
            });
        }

        // Static branch classes: one branch per basic block (+ the largest
        // phase offset), assigned by quota from the profile's BranchMix.
        let max_offset = profile
            .phases
            .iter()
            .map(|p| p.block_offset)
            .max()
            .unwrap_or(0);
        let n_branches = (profile.code_blocks + max_offset) as usize;
        let bm = profile.branch_mix;
        let mut class_rng = seeded_rng(child_seed(seed, 0xb1a5));
        let branch_class = (0..n_branches)
            .map(|_| {
                let u: f64 = class_rng.random();
                if u < bm.biased {
                    BranchClass::Biased {
                        taken_mostly: class_rng.random::<f64>() < 0.7,
                    }
                } else if u < bm.biased + bm.patterned {
                    BranchClass::Patterned {
                        period: 3 + (class_rng.random_range(0..4u8)),
                        inverted: class_rng.random::<f64>() < 0.3,
                    }
                } else {
                    // Center the per-branch bias on the profile's
                    // random_taken_p with a wide spread.
                    let center = bm.random_taken_p;
                    let p = (center + 0.6 * (class_rng.random::<f64>() - 0.5)).clamp(0.15, 0.85);
                    BranchClass::Random { taken_p: p }
                }
            })
            .collect();

        let scatter_salt = child_seed(seed, 0x5ca7) | 1;
        TraceGenerator {
            profile,
            rng,
            wp_rng,
            phases,
            superperiod: acc,
            seg_bounds,
            index: 0,
            block: 0,
            block_offset: 0,
            branch_class,
            branch_occ: vec![0; n_branches],
            seq_pos: 0,
            since_last_load: 0,
            scatter_salt,
        }
    }

    /// Convenience: generator for a benchmark by name-level profile.
    pub fn for_benchmark(b: crate::workload::Benchmark, seed: u64) -> Self {
        Self::new(b.profile(), seed)
    }

    /// Index of the phase active at the current instruction.
    fn phase_index(&self) -> usize {
        let pos = self.index % self.superperiod;
        match self.seg_bounds.binary_search(&pos) {
            Ok(i) => (i + 1).min(self.phases.len() - 1),
            Err(i) => i.min(self.phases.len() - 1),
        }
    }

    /// Scatter a Zipf rank across the phase footprint so hot lines are not
    /// clustered at low addresses (multiplicative hashing, bijective mod
    /// 2^64 because the salt is odd).
    fn rank_to_line(&self, rank: u64, lines: u64) -> u64 {
        rank.wrapping_mul(self.scatter_salt) % lines
    }

    /// Generate the next architectural instruction.
    pub fn next_inst(&mut self) -> Inst {
        let pi = self.phase_index();
        let mix = self.profile.op_mix;
        let u: f64 = self.rng.random();
        // Walk the mix CDF; the branch class absorbs the tail so the mix
        // always resolves even under floating-point rounding.
        let classes = [
            (mix.ialu, OpClass::IAlu),
            (mix.imult, OpClass::IMult),
            (mix.fpalu, OpClass::FpAlu),
            (mix.fpmult, OpClass::FpMult),
            (mix.load, OpClass::Load),
            (mix.store, OpClass::Store),
        ];
        let mut t = u;
        let mut op = OpClass::Branch;
        for (frac, cls) in classes {
            t -= frac;
            if t < 0.0 {
                op = cls;
                break;
            }
        }

        let (dep1, dep2) = self.sample_deps(op);
        let mut inst = Inst {
            op,
            dep1,
            dep2,
            addr: 0,
            block: self.block,
            code_offset: self.block_offset * 4,
            branch_id: 0,
            taken: false,
        };

        match op {
            OpClass::Load | OpClass::Store => {
                inst.addr = self.sample_data_addr(pi, op == OpClass::Load, &mut inst);
            }
            OpClass::Branch => {
                let raw_id = (self.block % self.branch_class.len() as u32) as usize;
                let occ = self.branch_occ[raw_id];
                self.branch_occ[raw_id] = occ.wrapping_add(1);
                let taken = match self.branch_class[raw_id] {
                    BranchClass::Biased { taken_mostly } => {
                        let flip: f64 = self.rng.random();
                        if taken_mostly {
                            flip < 0.95
                        } else {
                            flip < 0.05
                        }
                    }
                    BranchClass::Patterned { period, inverted } => {
                        let body = (occ % period as u32) != (period as u32 - 1);
                        body != inverted
                    }
                    BranchClass::Random { taken_p } => self.rng.random::<f64>() < taken_p,
                };
                inst.branch_id = raw_id as u32;
                inst.taken = taken;
                // Control transfer: next block from the phase's code-locality
                // distribution, offset into the phase's code region.
                let ph = &self.phases[pi];
                let next = ph.block_zipf.sample(&mut self.rng) as u32 + ph.phase.block_offset;
                self.block = next % self.branch_class.len() as u32;
                self.block_offset = 0;
            }
            _ => {}
        }

        if op != OpClass::Branch {
            self.block_offset += 1;
        }
        if op == OpClass::Load {
            self.since_last_load = 0;
        }
        self.since_last_load = self.since_last_load.saturating_add(1);
        self.index += 1;
        inst
    }

    /// Dependency distances: geometric-ish with the profile's mean,
    /// clamped to the scheduler-visible window.
    fn sample_deps(&mut self, op: OpClass) -> (u16, u16) {
        let mean = self.profile.mean_dep_distance;
        let draw = |rng: &mut StdRng| -> u16 {
            let u: f64 = rng.random();
            // Inverse-CDF of geometric with success prob 1/mean.
            let p = 1.0 / mean;
            let d = ((1.0 - u).ln() / (1.0 - p).ln()).ceil();
            (d.max(1.0) as u16).min(64)
        };
        let d1 = draw(&mut self.rng);
        let d2 = if op != OpClass::Branch && self.rng.random::<f64>() < 0.5 {
            draw(&mut self.rng)
        } else {
            0
        };
        (d1, d2)
    }

    /// Data address: sequential walker or scattered Zipf, with
    /// pointer-chasing loads forced onto the random component and made
    /// dependent on the previous load.
    fn sample_data_addr(&mut self, pi: usize, is_load: bool, inst: &mut Inst) -> u64 {
        let ph = &self.phases[pi];
        let chasing = is_load && self.rng.random::<f64>() < self.profile.dependent_load_frac;
        if chasing {
            // Address comes from the previous load's value: serialize on it.
            inst.dep1 = self.since_last_load.clamp(1, 64);
            let rank = ph.data_zipf.sample(&mut self.rng) as u64;
            let line = self.rank_to_line(rank, ph.data_lines);
            return line * 64 + self.rng.random_range(0..8u64) * 8;
        }
        if self.rng.random::<f64>() < ph.randomness {
            let rank = ph.data_zipf.sample(&mut self.rng) as u64;
            let line = self.rank_to_line(rank, ph.data_lines);
            line * 64 + self.rng.random_range(0..8u64) * 8
        } else {
            let footprint = ph.data_lines * 64;
            self.seq_pos = (self.seq_pos + self.profile.stride_b) % footprint;
            self.seq_pos
        }
    }

    /// Generate one *wrong-path* instruction (fetched past a mispredicted
    /// branch, later squashed). Uses an independent RNG stream so the
    /// architectural trace is identical across configurations.
    pub(crate) fn wrong_path_inst(&mut self) -> Inst {
        let pi = self.phase_index();
        let ph = &self.phases[pi];
        let u: f64 = self.wp_rng.random();
        let op = if u < 0.5 {
            OpClass::IAlu
        } else if u < 0.75 {
            OpClass::Load
        } else {
            OpClass::Branch
        };
        let mut addr = 0;
        if op == OpClass::Load {
            let rank = ph.data_zipf.sample(&mut self.wp_rng) as u64;
            addr = self.rank_to_line(rank, ph.data_lines) * 64;
        }
        let block = self.wp_rng.random_range(0..self.branch_class.len() as u32);
        Inst {
            op,
            dep1: 1,
            dep2: 0,
            addr,
            block,
            code_offset: 0,
            branch_id: block,
            taken: false,
        }
    }

    /// Materialize the next `n` instructions into a vector.
    pub fn take_vec(&mut self, n: usize) -> Vec<Inst> {
        (0..n).map(|_| self.next_inst()).collect()
    }

    /// Dynamic instruction index (number generated so far).
    pub fn index(&self) -> u64 {
        self.index
    }

    /// The profile driving this generator.
    pub fn profile(&self) -> &WorkloadProfile {
        &self.profile
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::Benchmark;
    use linalg::stats::mean;

    #[test]
    fn same_seed_same_trace() {
        let mut a = TraceGenerator::for_benchmark(Benchmark::Gcc, 99);
        let mut b = TraceGenerator::for_benchmark(Benchmark::Gcc, 99);
        for _ in 0..5000 {
            let (x, y) = (a.next_inst(), b.next_inst());
            assert_eq!(x.addr, y.addr);
            assert_eq!(x.block, y.block);
            assert_eq!(x.taken, y.taken);
            assert_eq!(x.op, y.op);
        }
    }

    #[test]
    fn different_seed_different_trace() {
        let mut a = TraceGenerator::for_benchmark(Benchmark::Gcc, 1);
        let mut b = TraceGenerator::for_benchmark(Benchmark::Gcc, 2);
        let va = a.take_vec(2000);
        let vb = b.take_vec(2000);
        let same = va
            .iter()
            .zip(&vb)
            .filter(|(x, y)| x.op == y.op && x.addr == y.addr)
            .count();
        assert!(same < 1500, "traces should diverge, {same} identical");
    }

    #[test]
    fn wrong_path_does_not_perturb_architectural_stream() {
        let mut a = TraceGenerator::for_benchmark(Benchmark::Mcf, 7);
        let mut b = TraceGenerator::for_benchmark(Benchmark::Mcf, 7);
        // Interleave wrong-path draws on one generator only.
        let mut va = Vec::new();
        let mut vb = Vec::new();
        for i in 0..3000 {
            va.push(a.next_inst());
            if i % 7 == 0 {
                let _ = a.wrong_path_inst();
            }
            vb.push(b.next_inst());
        }
        for (x, y) in va.iter().zip(&vb) {
            assert_eq!(x.addr, y.addr);
            assert_eq!(x.taken, y.taken);
        }
    }

    #[test]
    fn op_mix_is_respected() {
        let prof = Benchmark::Gcc.profile();
        let mut g = TraceGenerator::new(prof.clone(), 5);
        let v = g.take_vec(60_000);
        let frac = |cls: OpClass| v.iter().filter(|i| i.op == cls).count() as f64 / v.len() as f64;
        assert!((frac(OpClass::Branch) - prof.op_mix.branch).abs() < 0.01);
        assert!((frac(OpClass::Load) - prof.op_mix.load).abs() < 0.01);
        assert!((frac(OpClass::Store) - prof.op_mix.store).abs() < 0.01);
        assert_eq!(frac(OpClass::FpAlu), 0.0, "gcc is integer-only");
    }

    #[test]
    fn addresses_stay_in_footprint() {
        let prof = Benchmark::Equake.profile();
        let max_scale = prof
            .phases
            .iter()
            .map(|p| p.footprint_scale)
            .fold(0.0f64, f64::max);
        let bound = (prof.data_footprint as f64 * max_scale) as u64 + 64;
        let mut g = TraceGenerator::new(prof, 3);
        for _ in 0..30_000 {
            let i = g.next_inst();
            if matches!(i.op, OpClass::Load | OpClass::Store) {
                assert!(i.addr < bound, "addr {} beyond footprint {}", i.addr, bound);
            }
        }
    }

    #[test]
    fn deps_have_profile_mean_scale() {
        let prof = Benchmark::Swim.profile(); // mean_dep_distance = 9
        let mut g = TraceGenerator::new(prof, 11);
        let v = g.take_vec(30_000);
        let d: Vec<f64> = v
            .iter()
            .filter(|i| i.dep1 > 0)
            .map(|i| i.dep1 as f64)
            .collect();
        let m = mean(&d);
        assert!(m > 5.0 && m < 12.0, "mean dep distance {m}");
    }

    #[test]
    fn phases_shift_block_population() {
        // gcc's phases have disjoint block offsets; early and late windows
        // should use visibly different block sets.
        let mut g = TraceGenerator::for_benchmark(Benchmark::Gcc, 13);
        let first = g.take_vec(25_000);
        let _skip = g.take_vec(10_000);
        let second = g.take_vec(25_000);
        let set = |v: &[Inst]| {
            v.iter()
                .map(|i| i.block)
                .collect::<std::collections::HashSet<_>>()
        };
        let (s1, s2) = (set(&first), set(&second));
        let inter = s1.intersection(&s2).count();
        let union = s1.union(&s2).count();
        assert!(
            (inter as f64) < 0.9 * union as f64,
            "phases should differentiate code: {inter}/{union}"
        );
    }

    #[test]
    fn branch_population_mixes_predictability() {
        // gcc has patterned + random branches; per-branch outcomes must not
        // be constant for those classes.
        let mut g = TraceGenerator::for_benchmark(Benchmark::Gcc, 17);
        let mut taken_counts: std::collections::HashMap<u32, (u32, u32)> = Default::default();
        for _ in 0..80_000 {
            let i = g.next_inst();
            if i.op == OpClass::Branch {
                let e = taken_counts.entry(i.branch_id).or_default();
                if i.taken {
                    e.0 += 1;
                } else {
                    e.1 += 1;
                }
            }
        }
        // gcc's code footprint is large, so most static branches execute
        // only a few times in this window; judge mixing only on branches
        // with enough dynamic executions to show both outcomes.
        let hot: Vec<_> = taken_counts.values().filter(|(t, n)| t + n >= 6).collect();
        assert!(!hot.is_empty(), "expected some hot branches");
        let mixed = hot.iter().filter(|(t, n)| *t > 0 && *n > 0).count();
        assert!(
            mixed * 3 > hot.len(),
            "expected a sizable mixed-outcome branch population: {mixed}/{}",
            hot.len()
        );
    }

    #[test]
    fn code_addr_is_within_block_region() {
        let mut g = TraceGenerator::for_benchmark(Benchmark::Mesa, 23);
        for _ in 0..5000 {
            let i = g.next_inst();
            let base = i.block as u64 * CODE_BLOCK_BYTES;
            let a = i.code_addr();
            assert!(a >= base && a < base + CODE_BLOCK_BYTES);
        }
    }
}
