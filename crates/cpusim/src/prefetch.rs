//! Hardware prefetchers — a library extension beyond the paper's Table 1.
//!
//! The paper's design space has no prefetcher knob (SimpleScalar's default
//! hierarchy), but any downstream user exploring cache design will want
//! one. Two classic designs are provided:
//!
//! * [`NextLinePrefetcher`] — on a miss to line `L`, prefetch `L+1`
//!   (tagged sequential prefetch).
//! * [`StridePrefetcher`] — a reference-prediction table keyed by a
//!   stream id (we use the static block, standing in for the load PC)
//!   that detects constant strides and prefetches ahead.
//!
//! Prefetchers observe the demand-access stream and emit prefetch
//! addresses; the core inserts those lines into the hierarchy off the
//! critical path. `ablation_prefetch` in `crates/bench` quantifies the
//! effect per workload.

use serde::{Deserialize, Serialize};

/// Prefetcher selection for a [`crate::core::Core`] extension.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum PrefetcherKind {
    /// No prefetching (the paper's configuration).
    #[default]
    None,
    /// Tagged next-line prefetch.
    NextLine,
    /// Stride prefetch with a reference-prediction table.
    Stride,
}

impl PrefetcherKind {
    /// All variants, for sweeps.
    pub const ALL: [PrefetcherKind; 3] = [
        PrefetcherKind::None,
        PrefetcherKind::NextLine,
        PrefetcherKind::Stride,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            PrefetcherKind::None => "none",
            PrefetcherKind::NextLine => "next-line",
            PrefetcherKind::Stride => "stride",
        }
    }
}

/// Common interface: observe a demand access, optionally emit prefetch
/// addresses.
pub trait Prefetcher {
    /// Observe a demand access (`miss` = it missed L1) and return the
    /// byte addresses to prefetch.
    fn observe(&mut self, stream_id: u32, addr: u64, miss: bool) -> Vec<u64>;
    /// Number of prefetches issued so far.
    fn issued(&self) -> u64;
}

/// Tagged next-line prefetcher.
#[derive(Debug, Default)]
pub(crate) struct NextLinePrefetcher {
    line_shift: u32,
    issued: u64,
}

impl NextLinePrefetcher {
    /// `line_b` must match the L1 line size.
    pub fn new(line_b: u32) -> Self {
        assert!(line_b.is_power_of_two(), "line size must be a power of two");
        NextLinePrefetcher {
            line_shift: line_b.trailing_zeros(),
            issued: 0,
        }
    }
}

impl Prefetcher for NextLinePrefetcher {
    fn observe(&mut self, _stream_id: u32, addr: u64, miss: bool) -> Vec<u64> {
        if miss {
            self.issued += 1;
            vec![((addr >> self.line_shift) + 1) << self.line_shift]
        } else {
            Vec::new()
        }
    }

    fn issued(&self) -> u64 {
        self.issued
    }
}

/// One reference-prediction-table entry.
#[derive(Debug, Clone, Copy, Default)]
struct RptEntry {
    tag: u32,
    last_addr: u64,
    stride: i64,
    /// 2-bit confidence.
    confidence: u8,
}

/// Stride prefetcher (reference prediction table, Chen & Baer style).
#[derive(Debug)]
pub(crate) struct StridePrefetcher {
    table: Vec<RptEntry>,
    mask: u32,
    /// Prefetch distance in strides once confident.
    degree: u64,
    issued: u64,
}

impl StridePrefetcher {
    /// `entries` must be a power of two; `degree` = how many strides ahead.
    pub fn new(entries: usize, degree: u64) -> Self {
        assert!(
            entries.is_power_of_two(),
            "RPT entries must be a power of two"
        );
        assert!(degree >= 1, "prefetch degree must be at least 1");
        StridePrefetcher {
            table: vec![RptEntry::default(); entries],
            mask: entries as u32 - 1,
            degree,
            issued: 0,
        }
    }
}

impl Prefetcher for StridePrefetcher {
    fn observe(&mut self, stream_id: u32, addr: u64, _miss: bool) -> Vec<u64> {
        let e = &mut self.table[(stream_id & self.mask) as usize];
        if e.tag != stream_id {
            *e = RptEntry {
                tag: stream_id,
                last_addr: addr,
                stride: 0,
                confidence: 0,
            };
            return Vec::new();
        }
        let new_stride = addr as i64 - e.last_addr as i64;
        if new_stride == e.stride && new_stride != 0 {
            if e.confidence < 3 {
                e.confidence += 1;
            }
        } else {
            e.confidence = e.confidence.saturating_sub(1);
            if e.confidence == 0 {
                e.stride = new_stride;
            }
        }
        e.last_addr = addr;
        if e.confidence >= 2 && e.stride != 0 {
            self.issued += 1;
            let target = addr as i64 + e.stride * self.degree as i64;
            if target > 0 {
                return vec![target as u64];
            }
        }
        Vec::new()
    }

    fn issued(&self) -> u64 {
        self.issued
    }
}

/// Build the prefetcher selected by `kind` for an L1 with the given line
/// size.
pub fn build(kind: PrefetcherKind, line_b: u32) -> Option<Box<dyn Prefetcher + Send>> {
    match kind {
        PrefetcherKind::None => None,
        PrefetcherKind::NextLine => Some(Box::new(NextLinePrefetcher::new(line_b))),
        PrefetcherKind::Stride => Some(Box::new(StridePrefetcher::new(256, 2))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn next_line_prefetches_on_miss_only() {
        let mut p = NextLinePrefetcher::new(64);
        assert!(p.observe(0, 0x1000, false).is_empty());
        let pf = p.observe(0, 0x1000, true);
        assert_eq!(pf, vec![0x1040]);
        assert_eq!(p.issued(), 1);
    }

    #[test]
    fn stride_locks_onto_constant_stride() {
        let mut p = StridePrefetcher::new(64, 2);
        let mut issued = Vec::new();
        for i in 0..8u64 {
            issued.extend(p.observe(7, 0x1000 + i * 64, true));
        }
        // After training, prefetches land 2 strides ahead.
        assert!(!issued.is_empty());
        let last = *issued.last().unwrap();
        assert_eq!(last, 0x1000 + 7 * 64 + 2 * 64);
    }

    #[test]
    fn stride_ignores_random_streams() {
        let mut p = StridePrefetcher::new(64, 2);
        let addrs = [0x1000u64, 0x9040, 0x3300, 0x7780, 0x2210, 0xBB00];
        let mut total = 0;
        for &a in &addrs {
            total += p.observe(3, a, true).len();
        }
        assert_eq!(total, 0, "no confident stride should emerge");
    }

    #[test]
    fn streams_are_tracked_independently() {
        let mut p = StridePrefetcher::new(64, 1);
        for i in 0..6u64 {
            let _ = p.observe(1, 0x1000 + i * 8, true);
            let _ = p.observe(2, 0x90000 + i * 128, true);
        }
        let a = p.observe(1, 0x1000 + 6 * 8, true);
        let b = p.observe(2, 0x90000 + 6 * 128, true);
        assert_eq!(a, vec![0x1000 + 7 * 8]);
        assert_eq!(b, vec![0x90000 + 7 * 128]);
    }

    #[test]
    fn build_matches_kind() {
        assert!(build(PrefetcherKind::None, 64).is_none());
        assert!(build(PrefetcherKind::NextLine, 64).is_some());
        assert!(build(PrefetcherKind::Stride, 64).is_some());
    }
}
