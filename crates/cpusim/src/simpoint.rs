//! SimPoint-style representative-interval selection.
//!
//! The paper (§4.1) uses SimPoint [Sherwood et al., ASPLOS '02] to pick a
//! handful of 100M-instruction intervals whose weighted simulation
//! reproduces whole-program behaviour. The pipeline here is the same, scaled
//! down: split the trace into fixed-length intervals, collect a **basic
//! block vector** (BBV — execution frequency of each static block) per
//! interval, random-project the BBVs to a low dimension, cluster them with
//! k-means (k chosen by a BIC-style score), and return one representative
//! interval per cluster weighted by cluster population.

use crate::trace::{InstSource, TraceGenerator};
use crate::workload::Benchmark;
use linalg::dist::{child_seed, seeded_rng};
use rand::Rng;

/// Projected dimensionality of the BBVs (SimPoint uses 15).
pub(crate) const PROJECTED_DIMS: usize = 16;

/// One selected simulation point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimPoint {
    /// Interval index within the trace (interval `i` spans instructions
    /// `[i*len, (i+1)*len)`).
    pub interval: usize,
    /// Fraction of execution this point represents (cluster weight).
    pub weight: f64,
}

/// Result of the phase analysis.
#[derive(Debug, Clone)]
pub struct SimPointAnalysis {
    /// Selected representative intervals.
    pub points: Vec<SimPoint>,
    /// Cluster assignment of every interval.
    pub assignments: Vec<usize>,
    /// Chosen k.
    pub k: usize,
    /// Interval length in instructions.
    pub interval_len: u64,
}

/// Collect per-interval basic-block vectors, already random-projected to
/// [`PROJECTED_DIMS`] dimensions and L1-normalized.
pub(crate) fn collect_bbvs(
    benchmark: Benchmark,
    seed: u64,
    n_intervals: usize,
    interval_len: u64,
) -> Vec<[f64; PROJECTED_DIMS]> {
    let mut gen = TraceGenerator::for_benchmark(benchmark, seed);
    // Random ±1 projection per (block, dim), derived on the fly by hashing
    // so the matrix never materializes.
    let salt = child_seed(seed, 0x9b9b);
    let proj = |block: u32, dim: usize| -> f64 {
        let h = child_seed(salt, ((block as u64) << 5) | dim as u64);
        if h & 1 == 0 {
            1.0
        } else {
            -1.0
        }
    };
    let mut bbvs = Vec::with_capacity(n_intervals);
    for _ in 0..n_intervals {
        let mut v = [0.0f64; PROJECTED_DIMS];
        let mut count = 0u64;
        for _ in 0..interval_len {
            let inst = gen.fetch();
            for (d, slot) in v.iter_mut().enumerate() {
                *slot += proj(inst.block, d);
            }
            count += 1;
        }
        // Normalize by interval length so vectors are comparable.
        for slot in &mut v {
            *slot /= count as f64;
        }
        bbvs.push(v);
    }
    bbvs
}

/// Squared Euclidean distance between projected BBVs.
fn dist2(a: &[f64; PROJECTED_DIMS], b: &[f64; PROJECTED_DIMS]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Lloyd's k-means with k-means++ seeding. Returns (assignments, centroids,
/// within-cluster sum of squares).
pub(crate) fn kmeans(
    points: &[[f64; PROJECTED_DIMS]],
    k: usize,
    iters: usize,
    seed: u64,
) -> (Vec<usize>, Vec<[f64; PROJECTED_DIMS]>, f64) {
    assert!(
        k >= 1 && k <= points.len(),
        "kmeans: bad k={k} for {} points",
        points.len()
    );
    let mut rng = seeded_rng(seed);

    // k-means++ initialization.
    let mut centroids: Vec<[f64; PROJECTED_DIMS]> = Vec::with_capacity(k);
    centroids.push(points[rng.random_range(0..points.len())]);
    while centroids.len() < k {
        let d2: Vec<f64> = points
            .iter()
            .map(|p| {
                centroids
                    .iter()
                    .map(|c| dist2(p, c))
                    .fold(f64::INFINITY, f64::min)
            })
            .collect();
        let total: f64 = d2.iter().sum();
        if total <= 0.0 {
            // All points already coincide with centroids; duplicate one.
            centroids.push(points[rng.random_range(0..points.len())]);
            continue;
        }
        let mut t = rng.random::<f64>() * total;
        let mut chosen = points.len() - 1;
        for (i, &d) in d2.iter().enumerate() {
            t -= d;
            if t <= 0.0 {
                chosen = i;
                break;
            }
        }
        centroids.push(points[chosen]);
    }

    let mut assignments = vec![0usize; points.len()];
    let mut wss = f64::INFINITY;
    for _ in 0..iters {
        // Assign.
        let mut changed = false;
        let mut new_wss = 0.0;
        for (i, p) in points.iter().enumerate() {
            // Invariant: callers pass k >= 1, so `centroids` is never
            // empty; total_cmp keeps the assignment well-defined even if
            // a distance degenerates to NaN.
            let (best, bd) = centroids
                .iter()
                .enumerate()
                .map(|(j, c)| (j, dist2(p, c)))
                .min_by(|a, b| a.1.total_cmp(&b.1))
                .expect("kmeans: k >= 1 invariant");
            if assignments[i] != best {
                assignments[i] = best;
                changed = true;
            }
            new_wss += bd;
        }
        wss = new_wss;
        // Update.
        let mut sums = vec![[0.0f64; PROJECTED_DIMS]; k];
        let mut counts = vec![0usize; k];
        for (p, &a) in points.iter().zip(&assignments) {
            counts[a] += 1;
            for (s, &x) in sums[a].iter_mut().zip(p) {
                *s += x;
            }
        }
        for ((sum, &count), centroid) in sums.iter_mut().zip(&counts).zip(&mut centroids) {
            if count > 0 {
                for s in sum.iter_mut() {
                    *s /= count as f64;
                }
                *centroid = *sum;
            }
        }
        if !changed {
            break;
        }
    }
    (assignments, centroids, wss)
}

/// BIC-style score for a clustering (higher is better): spherical-Gaussian
/// log-likelihood minus a complexity penalty, following the SimPoint paper's
/// model-selection recipe.
pub(crate) fn bic_score(n: usize, k: usize, wss: f64) -> f64 {
    let n_f = n as f64;
    let d = PROJECTED_DIMS as f64;
    let variance = (wss / (n_f * d)).max(1e-12);
    let loglik = -0.5 * n_f * d * (variance.ln() + 1.0 + (2.0 * std::f64::consts::PI).ln());
    let params = k as f64 * (d + 1.0);
    loglik - 0.5 * params * n_f.ln()
}

/// Full SimPoint analysis: collect BBVs, sweep k in `1..=max_k`, keep the
/// best BIC, and return one representative interval per cluster.
pub fn analyze(
    benchmark: Benchmark,
    seed: u64,
    n_intervals: usize,
    interval_len: u64,
    max_k: usize,
) -> SimPointAnalysis {
    assert!(n_intervals >= 1, "need at least one interval");
    let bbvs = collect_bbvs(benchmark, seed, n_intervals, interval_len);
    let max_k = max_k.min(n_intervals).max(1);

    type Clustering = (f64, usize, Vec<usize>, Vec<[f64; PROJECTED_DIMS]>);
    let mut best: Option<Clustering> = None;
    for k in 1..=max_k {
        let (assign, centroids, wss) = kmeans(&bbvs, k, 50, child_seed(seed, k as u64));
        let score = bic_score(n_intervals, k, wss);
        if best.as_ref().is_none_or(|(s, ..)| score > *s) {
            best = Some((score, k, assign, centroids));
        }
    }
    // Invariant: `max_k >= 1`, so the loop above ran at least once.
    let (_, k, assignments, centroids) = best.expect("max_k >= 1 invariant");

    // Representative per cluster: the member closest to the centroid,
    // weighted by cluster population.
    let mut points = Vec::with_capacity(k);
    #[allow(clippy::needless_range_loop)] // j is a cluster id, not an index walk
    for j in 0..k {
        let members: Vec<usize> = (0..n_intervals).filter(|&i| assignments[i] == j).collect();
        if members.is_empty() {
            continue;
        }
        let Some(&rep) = members.iter().min_by(|&&a, &&b| {
            dist2(&bbvs[a], &centroids[j]).total_cmp(&dist2(&bbvs[b], &centroids[j]))
        }) else {
            continue;
        };
        points.push(SimPoint {
            interval: rep,
            weight: members.len() as f64 / n_intervals as f64,
        });
    }
    points.sort_by_key(|p| p.interval);
    SimPointAnalysis {
        points,
        assignments,
        k,
        interval_len,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster_points(
        centers: &[[f64; PROJECTED_DIMS]],
        per: usize,
        spread: f64,
        seed: u64,
    ) -> Vec<[f64; PROJECTED_DIMS]> {
        let mut rng = seeded_rng(seed);
        let mut out = Vec::new();
        for c in centers {
            for _ in 0..per {
                let mut p = *c;
                for x in &mut p {
                    *x += spread * (rng.random::<f64>() - 0.5);
                }
                out.push(p);
            }
        }
        out
    }

    #[test]
    fn kmeans_recovers_separated_clusters() {
        let mut c1 = [0.0; PROJECTED_DIMS];
        let mut c2 = [0.0; PROJECTED_DIMS];
        c1[0] = 10.0;
        c2[0] = -10.0;
        let pts = cluster_points(&[c1, c2], 20, 0.5, 1);
        let (assign, _, wss) = kmeans(&pts, 2, 50, 2);
        // All of the first 20 in one cluster, the rest in the other.
        let a0 = assign[0];
        assert!(assign[..20].iter().all(|&a| a == a0));
        assert!(assign[20..].iter().all(|&a| a != a0));
        assert!(wss < 20.0);
    }

    #[test]
    fn kmeans_k1_centroid_is_mean() {
        let pts = cluster_points(&[[1.0; PROJECTED_DIMS]], 10, 0.2, 3);
        let (assign, centroids, _) = kmeans(&pts, 1, 10, 4);
        assert!(assign.iter().all(|&a| a == 0));
        for d in 0..PROJECTED_DIMS {
            let m: f64 = pts.iter().map(|p| p[d]).sum::<f64>() / pts.len() as f64;
            assert!((centroids[0][d] - m).abs() < 1e-9);
        }
    }

    #[test]
    fn bic_penalizes_complexity_at_equal_fit() {
        let s1 = bic_score(100, 2, 50.0);
        let s2 = bic_score(100, 10, 50.0);
        assert!(s1 > s2, "same WSS, more clusters must score lower");
    }

    #[test]
    fn weights_sum_to_one() {
        let a = analyze(Benchmark::Gcc, 42, 12, 2000, 4);
        let total: f64 = a.points.iter().map(|p| p.weight).sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert!(!a.points.is_empty());
        assert!(a.points.iter().all(|p| p.interval < 12));
    }

    #[test]
    fn phase_structure_is_detected() {
        // gcc's profile has 3 phases with disjoint code; with intervals
        // shorter than a phase segment, the analysis should find k >= 2.
        let a = analyze(Benchmark::Gcc, 7, 16, 5000, 5);
        assert!(a.k >= 2, "expected multiple phases, got k={}", a.k);
    }

    #[test]
    fn assignments_cover_all_intervals() {
        let a = analyze(Benchmark::Mesa, 9, 10, 2000, 3);
        assert_eq!(a.assignments.len(), 10);
        for &c in &a.assignments {
            assert!(c < a.k);
        }
    }
}
