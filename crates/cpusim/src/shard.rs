//! Sharded, work-stealing design-space sweeps over the checkpoint ledger.
//!
//! The sequential sweep ([`crate::runner::try_sweep_design_space`]) already
//! checkpoints every completed configuration to a truncation-tolerant JSONL
//! file. This module reuses that file as a **work-stealing ledger**: the
//! index range is partitioned into fixed-size units, worker threads claim
//! units from a shared queue, and every claim / completed simulation /
//! finished unit is appended as its own record. A killed worker loses at
//! most one in-flight line (the same guarantee the sequential checkpoint
//! gives); on resume, its claimed-but-unfinished units are detected as
//! orphans and re-claimed, and only the individual simulations missing from
//! the ledger are redone.
//!
//! Because each configuration's cycle count is a pure function of
//! `(config, benchmark, opts.seed)`, the merged result of any shard count,
//! kill schedule, and resume sequence is **byte-identical** to a sequential
//! sweep — [`merged_jsonl`] canonicalizes the result set so tests and CI
//! can assert exactly that.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};

use crate::config::DesignSpace;
use crate::core::PipelineStats;
use crate::runner::{self, SimOptions, SimResult};
use crate::workload::Benchmark;
use fault::checkpoint::{self, CheckpointWriter};
use fault::{Error, Result};
use rayon::prelude::*;
use telemetry::json::JsonObject;

/// Options controlling a sharded sweep.
#[derive(Debug, Clone, Copy)]
pub struct ShardOptions {
    /// Worker threads claiming units (≥ 1).
    pub shards: usize,
    /// Configurations per work unit (≥ 1). Smaller units steal better and
    /// lose less to a kill; larger units amortize ledger writes.
    pub unit_size: usize,
}

impl Default for ShardOptions {
    fn default() -> Self {
        ShardOptions {
            shards: 4,
            unit_size: 64,
        }
    }
}

/// Outcome of a sharded sweep.
#[derive(Debug, Clone)]
pub struct ShardOutcome {
    /// Per-configuration results, in design-space order.
    pub results: Vec<SimResult>,
    /// Configurations restored from the ledger.
    pub restored: usize,
    /// Configurations simulated by this process.
    pub simulated: usize,
    /// Work units dispatched by this process.
    pub units: usize,
    /// Units a previous (killed) run claimed but never finished; their
    /// missing simulations were re-claimed by this run.
    pub reclaimed: usize,
}

/// Outcome of a targeted batch simulation ([`try_simulate_indices`]).
#[derive(Debug, Clone)]
pub struct BatchOutcome {
    /// One result per requested index, in request order.
    pub results: Vec<SimResult>,
    /// Distinct requested configurations restored from the ledger.
    pub restored: usize,
    /// Distinct requested configurations simulated by this process.
    pub simulated: usize,
}

fn claim_record(unit: u64, worker: usize, first: usize, count: usize) -> String {
    JsonObject::new()
        .str("type", "claim")
        .uint("unit", unit)
        .uint("worker", worker as u64)
        .uint("first", first as u64)
        .uint("count", count as u64)
        .finish()
}

fn unit_done_record(unit: u64, worker: usize) -> String {
    JsonObject::new()
        .str("type", "unit_done")
        .uint("unit", unit)
        .uint("worker", worker as u64)
        .finish()
}

/// Canonical JSONL rendering of a full result set, one `sim` line per
/// configuration in space order. Two sweeps over the same space agree
/// byte-for-byte iff this string matches — the identity the shard tests
/// and the CI `shard-smoke` job assert.
pub fn merged_jsonl(results: &[SimResult]) -> String {
    let mut out = String::with_capacity(results.len() * 64);
    for (idx, r) in results.iter().enumerate() {
        out.push_str(&runner::sim_record(idx, r));
        out.push('\n');
    }
    out
}

/// Restored ledger state: per-index results plus shard bookkeeping.
struct LedgerState {
    done: HashMap<usize, SimResult>,
    /// First unused unit id (ids are unique across resumes so orphaned
    /// claims from different runs never collide).
    unit_base: u64,
    /// Claims with no matching `unit_done` — interrupted units.
    orphans: usize,
}

fn restore_ledger(
    path: &str,
    space: &DesignSpace,
    benchmark: Benchmark,
    opts: &SimOptions,
) -> Result<(LedgerState, CheckpointWriter)> {
    let n = space.len();
    let records = checkpoint::load_records(path)?;
    let mut state = LedgerState {
        done: HashMap::new(),
        unit_base: 0,
        orphans: 0,
    };
    if let Some(header) = records.first() {
        checkpoint::check_header(
            path,
            header,
            &runner::sweep_header_expectations(benchmark, space, opts),
        )?;
        for rec in checkpoint::records_of_type(&records, "sim") {
            let idx = checkpoint::u64_field(path, rec, "idx")? as usize;
            if idx >= n {
                return Err(Error::checkpoint(
                    path,
                    format!("sim record idx {idx} outside design space of {n}"),
                ));
            }
            let cycles = checkpoint::f64_field(path, rec, "cycles")?;
            let stats = PipelineStats {
                cycles: checkpoint::u64_field(path, rec, "stat_cycles")?,
                instructions: checkpoint::u64_field(path, rec, "stat_instructions")?,
                ..Default::default()
            };
            state.done.insert(
                idx,
                SimResult {
                    config: space.config_at(idx),
                    benchmark,
                    cycles,
                    stats,
                },
            );
        }
        let mut claimed = Vec::new();
        for rec in checkpoint::records_of_type(&records, "claim") {
            claimed.push(checkpoint::u64_field(path, rec, "unit")?);
        }
        let mut finished = Vec::new();
        for rec in checkpoint::records_of_type(&records, "unit_done") {
            finished.push(checkpoint::u64_field(path, rec, "unit")?);
        }
        state.unit_base = claimed.iter().chain(&finished).max().map_or(0, |&m| m + 1);
        state.orphans = claimed.iter().filter(|u| !finished.contains(u)).count();
    }
    let writer = CheckpointWriter::append(path)?;
    if records.is_empty() {
        writer.append_record(&runner::sweep_header(benchmark, space, opts))?;
    }
    Ok((state, writer))
}

/// Sharded sweep of the whole space with work-stealing over `ledger`.
///
/// Behaviourally equivalent to [`runner::try_sweep_design_space`] — same
/// header, same `sim` records, byte-identical merged results — but work is
/// dispatched as units claimed by `opts.shards` worker threads, and the
/// ledger additionally records `claim` / `unit_done` lines so an operator
/// can see which worker died holding which unit. Resume restores completed
/// simulations regardless of which worker (or which *run*) produced them.
pub fn try_sweep_sharded(
    space: &DesignSpace,
    benchmark: Benchmark,
    opts: &SimOptions,
    shard: &ShardOptions,
    ledger: &str,
) -> Result<ShardOutcome> {
    if shard.shards == 0 || shard.unit_size == 0 {
        return Err(Error::invalid(format!(
            "sharded sweep needs shards ≥ 1 and unit_size ≥ 1 (got {} / {})",
            shard.shards, shard.unit_size
        )));
    }
    let n = space.len();
    if n == 0 {
        return Err(Error::invalid("cannot sweep an empty design space"));
    }
    let _span = telemetry::span!(
        "shard_sweep",
        benchmark = benchmark.name(),
        configs = n,
        shards = shard.shards,
    );
    let (state, writer) = restore_ledger(ledger, space, benchmark, opts)?;
    let LedgerState {
        mut done,
        unit_base,
        orphans,
    } = state;
    let restored = done.len();
    let todo: Vec<usize> = (0..n).filter(|i| !done.contains_key(i)).collect();
    if orphans > 0 {
        telemetry::point!("shard/reclaimed_units", units = orphans);
    }
    if todo.is_empty() {
        let results = (0..n)
            .map(|i| {
                done.remove(&i)
                    .ok_or_else(|| Error::checkpoint(ledger, format!("missing result for idx {i}")))
            })
            .collect::<Result<Vec<_>>>()?;
        return Ok(ShardOutcome {
            results,
            restored,
            simulated: 0,
            units: 0,
            reclaimed: orphans,
        });
    }

    let fresh = run_units(space, benchmark, opts, &todo, shard, unit_base, &writer)?;
    let simulated = fresh.len();
    let units = todo.len().div_ceil(shard.unit_size);
    done.extend(fresh);
    let results = (0..n)
        .map(|i| {
            done.remove(&i)
                .ok_or_else(|| Error::checkpoint(ledger, format!("missing result for idx {i}")))
        })
        .collect::<Result<Vec<_>>>()?;
    Ok(ShardOutcome {
        results,
        restored,
        simulated,
        units,
        reclaimed: orphans,
    })
}

/// Dispatch `todo` as units over `shard.shards` worker threads, appending
/// `claim` / `sim` / `unit_done` records to the shared writer. Returns the
/// freshly simulated `(idx, result)` pairs.
fn run_units(
    space: &DesignSpace,
    benchmark: Benchmark,
    opts: &SimOptions,
    todo: &[usize],
    shard: &ShardOptions,
    unit_base: u64,
    writer: &CheckpointWriter,
) -> Result<Vec<(usize, SimResult)>> {
    let (traces, weights, _) = runner::materialize(benchmark, opts);
    let units: Vec<&[usize]> = todo.chunks(shard.unit_size).collect();
    let workers = shard.shards.min(units.len()).max(1);
    let progress = telemetry::Progress::new("shard_sweep", todo.len() as u64);
    let cursor = AtomicUsize::new(0);
    let mut worker_results: Vec<Result<Vec<(usize, SimResult)>>> = Vec::new();
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for worker in 0..workers {
            let units = &units;
            let cursor = &cursor;
            let traces = &traces;
            let weights = &weights;
            let progress = &progress;
            handles.push(scope.spawn(move || -> Result<Vec<(usize, SimResult)>> {
                let mut local = Vec::new();
                loop {
                    let u = cursor.fetch_add(1, Ordering::Relaxed);
                    if u >= units.len() {
                        break;
                    }
                    let unit = units[u];
                    let unit_id = unit_base + u as u64;
                    writer.append_record(&claim_record(unit_id, worker, unit[0], unit.len()))?;
                    for &idx in unit {
                        let config = space.config_at(idx);
                        let result =
                            runner::run_windows(config, benchmark, traces, weights, opts.seed);
                        if result.cycles.is_finite() {
                            writer.append_record(&runner::sim_record(idx, &result))?;
                        } else {
                            // Matches the sequential driver: non-finite
                            // cycles don't round-trip as JSON, so the
                            // point is re-simulated on resume instead.
                            telemetry::point!("shard/skip_checkpoint", idx);
                        }
                        progress.inc();
                        local.push((idx, result));
                    }
                    writer.append_record(&unit_done_record(unit_id, worker))?;
                }
                Ok(local)
            }));
        }
        for h in handles {
            // A worker that panicked poisons the whole sweep; propagate.
            match h.join() {
                Ok(r) => worker_results.push(r),
                Err(_) => worker_results.push(Err(Error::invalid(
                    "shard worker thread panicked; ledger remains resumable",
                ))),
            }
        }
    });
    let mut fresh = Vec::with_capacity(todo.len());
    for r in worker_results {
        fresh.extend(r?);
    }
    Ok(fresh)
}

/// Simulate exactly the requested indices (the adaptive loop's lazy
/// acquisition path), optionally checkpointed through the same ledger
/// format as the full sweeps.
///
/// Results come back in request order (duplicates allowed — they share
/// one simulation). With a ledger, previously recorded simulations are
/// restored instead of re-run, and fresh ones are appended, so a killed
/// acquisition round resumes without repeating work. Without a ledger the
/// batch is simulated in parallel in memory.
pub fn try_simulate_indices(
    space: &DesignSpace,
    benchmark: Benchmark,
    opts: &SimOptions,
    indices: &[usize],
    ledger: Option<&str>,
) -> Result<BatchOutcome> {
    let n = space.len();
    if let Some(&bad) = indices.iter().find(|&&i| i >= n) {
        return Err(Error::invalid(format!(
            "requested index {bad} outside the {n}-point design space"
        )));
    }
    let _span = telemetry::span!(
        "simulate_indices",
        benchmark = benchmark.name(),
        requested = indices.len(),
    );
    let mut done: HashMap<usize, SimResult> = HashMap::new();
    let mut writer = None;
    if let Some(path) = ledger {
        let (state, w) = restore_ledger(path, space, benchmark, opts)?;
        done = state.done;
        writer = Some(w);
    }
    let mut missing: Vec<usize> = Vec::new();
    for &idx in indices {
        if !done.contains_key(&idx) && !missing.contains(&idx) {
            missing.push(idx);
        }
    }
    let restored = indices
        .iter()
        .collect::<std::collections::HashSet<_>>()
        .len()
        - missing.len();
    let simulated = missing.len();
    if !missing.is_empty() {
        let (traces, weights, _) = runner::materialize(benchmark, opts);
        let writer = &writer;
        let fresh: Vec<Result<(usize, SimResult)>> = missing
            .par_iter()
            .map(|&idx| {
                let config = space.config_at(idx);
                let result = runner::run_windows(config, benchmark, &traces, &weights, opts.seed);
                if let Some(w) = writer {
                    if result.cycles.is_finite() {
                        w.append_record(&runner::sim_record(idx, &result))?;
                    }
                }
                Ok((idx, result))
            })
            .collect();
        for r in fresh {
            let (idx, result) = r?;
            done.insert(idx, result);
        }
    }
    let results = indices
        .iter()
        .map(|idx| {
            done.get(idx).cloned().ok_or_else(|| {
                Error::invalid(format!("internal: index {idx} missing after simulation"))
            })
        })
        .collect::<Result<Vec<_>>>()?;
    telemetry::counter_add("shard/batch_simulated", simulated as u64);
    Ok(BatchOutcome {
        results,
        restored,
        simulated,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SpaceSpec;

    fn tmp_ledger(name: &str) -> String {
        let dir = std::env::temp_dir().join("perfpredict-shard-tests");
        std::fs::create_dir_all(&dir).expect("create tmp dir");
        let path = dir.join(name);
        let _ = std::fs::remove_file(&path);
        path.to_string_lossy().into_owned()
    }

    fn smoke_space() -> DesignSpace {
        DesignSpace::try_generate(&SpaceSpec::smoke()).expect("smoke spec is valid")
    }

    #[test]
    fn sharded_sweep_is_byte_identical_to_sequential() {
        let space = smoke_space();
        let opts = SimOptions::quick();
        let sequential = runner::sweep_design_space(&space, Benchmark::Mcf, &opts);
        let ledger = tmp_ledger("identity.jsonl");
        let sharded = try_sweep_sharded(
            &space,
            Benchmark::Mcf,
            &opts,
            &ShardOptions {
                shards: 3,
                unit_size: 5,
            },
            &ledger,
        )
        .expect("sharded sweep");
        assert_eq!(sharded.restored, 0);
        assert_eq!(sharded.simulated, space.len());
        assert_eq!(sharded.units, space.len().div_ceil(5));
        assert_eq!(
            merged_jsonl(&sequential),
            merged_jsonl(&sharded.results),
            "1 vs N shards must merge byte-identically"
        );
        let _ = std::fs::remove_file(&ledger);
    }

    /// Kill-resume identity: sever the ledger right after a `claim` line
    /// (a worker died holding the unit, before any of its sims landed),
    /// with a torn partial line after it. The resumed sweep must reclaim
    /// the orphaned unit and still merge byte-identically.
    #[test]
    fn killed_worker_unit_is_reclaimed_and_merge_stays_identical() {
        let space = smoke_space();
        let opts = SimOptions::quick();
        let reference = runner::sweep_design_space(&space, Benchmark::Gcc, &opts);
        let ledger = tmp_ledger("kill-resume.jsonl");
        let shard = ShardOptions {
            shards: 2,
            unit_size: 8,
        };
        try_sweep_sharded(&space, Benchmark::Gcc, &opts, &shard, &ledger).expect("first run");

        let text = std::fs::read_to_string(&ledger).expect("read ledger");
        let lines: Vec<&str> = text.lines().collect();
        let last_claim = lines
            .iter()
            .enumerate()
            .filter(|(_, l)| l.contains("\"claim\""))
            .map(|(i, _)| i)
            .next_back()
            .expect("at least one claim");
        let mut cut = lines[..=last_claim].join("\n");
        cut.push('\n');
        cut.push_str(&lines[last_claim + 1][..lines[last_claim + 1].len() / 2]);
        std::fs::write(&ledger, &cut).expect("sever ledger");

        let resumed =
            try_sweep_sharded(&space, Benchmark::Gcc, &opts, &shard, &ledger).expect("resume");
        assert!(
            resumed.reclaimed >= 1,
            "the severed claim must surface as a reclaimed unit"
        );
        assert!(resumed.restored > 0 && resumed.simulated > 0);
        assert_eq!(resumed.restored + resumed.simulated, space.len());
        assert_eq!(
            merged_jsonl(&reference),
            merged_jsonl(&resumed.results),
            "kill + resume must not change a single byte of the merge"
        );

        // A third run restores everything and does no work.
        let again =
            try_sweep_sharded(&space, Benchmark::Gcc, &opts, &shard, &ledger).expect("idle resume");
        assert_eq!(again.simulated, 0);
        assert_eq!(merged_jsonl(&reference), merged_jsonl(&again.results));
        let _ = std::fs::remove_file(&ledger);
    }

    #[test]
    fn ledger_for_equal_size_different_generated_space_is_rejected() {
        let space = smoke_space();
        let mut other_spec = SpaceSpec::smoke();
        other_spec.l1d_size_kb = vec![16, 32, 128];
        let other = DesignSpace::try_generate(&other_spec).expect("other spec");
        assert_eq!(space.len(), other.len());
        let opts = SimOptions::quick();
        let ledger = tmp_ledger("wrong-space.jsonl");
        let shard = ShardOptions {
            shards: 2,
            unit_size: 8,
        };
        try_sweep_sharded(&space, Benchmark::Mcf, &opts, &shard, &ledger).expect("first run");
        match try_sweep_sharded(&other, Benchmark::Mcf, &opts, &shard, &ledger) {
            Err(Error::Checkpoint { detail, .. }) => {
                assert!(detail.contains("space_hash"), "{detail}");
            }
            other => panic!("expected Checkpoint error, got {other:?}"),
        }
        let _ = std::fs::remove_file(&ledger);
    }

    #[test]
    fn simulate_indices_matches_direct_simulation_and_resumes() {
        let space = smoke_space();
        let opts = SimOptions::quick();
        let ledger = tmp_ledger("batch.jsonl");
        let indices = [5usize, 3, 3, 40];
        let batch = try_simulate_indices(&space, Benchmark::Mesa, &opts, &indices, Some(&ledger))
            .expect("batch");
        assert_eq!(batch.results.len(), 4);
        assert_eq!(batch.simulated, 3, "duplicate index shares one simulation");
        assert_eq!(batch.restored, 0);
        for (&idx, r) in indices.iter().zip(&batch.results) {
            let direct = runner::simulate(Benchmark::Mesa, space.config_at(idx), &opts);
            assert_eq!(r.cycles, direct.cycles, "idx {idx}");
        }
        // Same ledger, superset request: only the new index is simulated.
        let wider = try_simulate_indices(
            &space,
            Benchmark::Mesa,
            &opts,
            &[3, 5, 40, 41],
            Some(&ledger),
        )
        .expect("resume batch");
        assert_eq!(wider.restored, 3);
        assert_eq!(wider.simulated, 1);
        assert_eq!(wider.results[0].cycles, batch.results[1].cycles);
        let _ = std::fs::remove_file(&ledger);
    }

    #[test]
    fn simulate_indices_rejects_out_of_range() {
        let space = smoke_space();
        let e = try_simulate_indices(
            &space,
            Benchmark::Mcf,
            &SimOptions::quick(),
            &[0, space.len()],
            None,
        )
        .expect_err("out of range");
        assert_eq!(e.kind(), "invalid");
    }

    #[test]
    fn zero_shards_or_units_are_invalid() {
        let space = smoke_space();
        let opts = SimOptions::quick();
        let bad = ShardOptions {
            shards: 0,
            unit_size: 8,
        };
        let e = try_sweep_sharded(&space, Benchmark::Mcf, &opts, &bad, "unused.jsonl")
            .expect_err("zero shards");
        assert_eq!(e.kind(), "invalid");
    }
}
