//! `cpusim` — a trace-driven out-of-order microprocessor simulator.
//!
//! This crate is the reproduction's substitute for the SimpleScalar
//! `sim-outorder` + SPEC CPU2000 + SimPoint stack used by Section 4.1/4.2 of
//! the paper. It provides:
//!
//! * [`config`] — the 24 Table-1 microarchitecture parameters and the
//!   canonical 4608-point design-space lattice.
//! * [`workload`] — synthetic per-benchmark workload profiles (applu,
//!   equake, gcc, mesa, mcf, and friends) capturing op mix, memory
//!   footprint/locality, branch behaviour, and ILP.
//! * [`trace`] — a deterministic, seeded instruction-stream generator; the
//!   same (benchmark, seed) pair always yields the same trace so that
//!   cross-configuration cycle differences are attributable to the
//!   configuration alone.
//! * [`cache`] / [`tlb`] — set-associative LRU caches and TLBs.
//! * [`bpred`] — perfect, bimodal, two-level (gshare), and combining
//!   (tournament) branch predictors.
//! * [`core`] — the cycle-level pipeline model: fetch, dispatch into a
//!   Register Update Unit (SimpleScalar's unified ROB/reservation-station),
//!   a load/store queue, per-class functional units, mispredict recovery,
//!   and optional wrong-path issue.
//! * [`simpoint`] — basic-block-vector phase analysis with k-means, the
//!   SimPoint-style representative-interval picker.
//! * [`prefetch`] — next-line and stride prefetchers (a library extension
//!   past Table 1; see the `ablation_prefetch` harness).
//! * [`runner`] — the high-level `(benchmark, config) -> cycles` entry point
//!   and the Rayon-parallel full-design-space sweep.
//!
//! The simulator is *mechanistic*: cycles emerge from queue occupancy, cache
//! misses, and mispredict flushes — not from a closed-form formula — so the
//! learning problem the ML layer faces has the same character as the paper's
//! (nonlinear, interaction-heavy, benchmark-dependent).

pub mod bpred;
pub mod cache;
pub mod config;
pub mod core;
pub mod prefetch;
pub mod runner;
pub mod shard;
pub mod simpoint;
pub mod tlb;
pub mod trace;
pub mod workload;

pub use config::{BranchPredictorKind, CpuConfig, DesignSpace, SpaceSpec};
pub use runner::{
    simulate, sweep_design_space, try_sweep_design_space, SimOptions, SimResult, SweepOutcome,
};
pub use shard::{
    merged_jsonl, try_simulate_indices, try_sweep_sharded, BatchOutcome, ShardOptions, ShardOutcome,
};
pub use workload::{Benchmark, WorkloadProfile};
