//! Set-associative LRU caches.
//!
//! Timing-only model: a cache answers hit/miss and maintains true-LRU
//! replacement per set. Write policy is write-allocate with no writeback
//! traffic modelling (store misses allocate like loads; dirty evictions are
//! not charged — SimpleScalar's default timing configuration makes the same
//! simplification for the bus-free hierarchy the paper uses).

use crate::config::CacheGeometry;

/// One cache level.
#[derive(Debug, Clone)]
pub struct Cache {
    /// Tags per set, most-recently-used first.
    sets: Vec<Vec<u64>>,
    assoc: usize,
    line_shift: u32,
    set_mask: u64,
    /// Access counter.
    accesses: u64,
    /// Miss counter.
    misses: u64,
}

impl Cache {
    /// Build from a geometry. Set count is rounded to a power of two so set
    /// indexing is a mask (geometries in this project are always
    /// power-of-two sized).
    pub fn new(geom: CacheGeometry) -> Self {
        let sets = geom.num_sets();
        assert!(
            sets.is_power_of_two(),
            "cache sets must be a power of two: {sets}"
        );
        assert!(
            geom.line_b.is_power_of_two(),
            "line size must be a power of two"
        );
        Cache {
            sets: vec![Vec::with_capacity(geom.assoc as usize); sets],
            assoc: geom.assoc as usize,
            line_shift: geom.line_b.trailing_zeros(),
            set_mask: sets as u64 - 1,
            accesses: 0,
            misses: 0,
        }
    }

    /// Access a byte address; returns `true` on hit. Misses allocate.
    pub fn access(&mut self, addr: u64) -> bool {
        self.accesses += 1;
        let line = addr >> self.line_shift;
        let set = (line & self.set_mask) as usize;
        let tag = line >> self.set_mask.count_ones();
        let ways = &mut self.sets[set];
        if let Some(pos) = ways.iter().position(|&t| t == tag) {
            // Move to MRU.
            let t = ways.remove(pos);
            ways.insert(0, t);
            true
        } else {
            self.misses += 1;
            if ways.len() == self.assoc {
                ways.pop();
            }
            ways.insert(0, tag);
            false
        }
    }

    /// Probe without updating state or counters (used by wrong-path
    /// pollution modelling to decide latency without polluting *stats*).
    pub fn probe(&self, addr: u64) -> bool {
        let line = addr >> self.line_shift;
        let set = (line & self.set_mask) as usize;
        let tag = line >> self.set_mask.count_ones();
        self.sets[set].contains(&tag)
    }

    /// Total accesses so far.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Total misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Miss rate (0 if never accessed).
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }
}

/// A full data-side or instruction-side hierarchy lookup result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HierLevel {
    /// Hit in the first-level cache.
    L1,
    /// Hit in the unified L2.
    L2,
    /// Hit in the optional L3.
    L3,
    /// Serviced by main memory.
    Memory,
}

/// Latency model for the hierarchy, in cycles.
///
/// Values follow common SimpleScalar-era settings: L1 1 cycle (pipelined
/// into load-to-use), L2 12, L3 40, memory 200.
#[derive(Debug, Clone, Copy)]
pub struct LatencyModel {
    /// L1 hit latency.
    pub l1: u32,
    /// L2 hit latency.
    pub l2: u32,
    /// L3 hit latency.
    pub l3: u32,
    /// Main-memory latency.
    pub memory: u32,
    /// TLB miss (page-walk) penalty.
    pub tlb_miss: u32,
}

impl Default for LatencyModel {
    fn default() -> Self {
        LatencyModel {
            l1: 1,
            l2: 12,
            l3: 40,
            memory: 200,
            tlb_miss: 30,
        }
    }
}

impl LatencyModel {
    /// Latency of an access satisfied at `level`.
    pub(crate) fn for_level(&self, level: HierLevel) -> u32 {
        match level {
            HierLevel::L1 => self.l1,
            HierLevel::L2 => self.l2,
            HierLevel::L3 => self.l3,
            HierLevel::Memory => self.memory,
        }
    }
}

/// L1 + shared L2 + optional L3 stack for one access stream.
#[derive(Debug, Clone)]
pub struct Hierarchy {
    /// First-level cache (I or D).
    pub l1: Cache,
}

impl Hierarchy {
    /// Build the L1 for this stream.
    pub fn new(l1: CacheGeometry) -> Self {
        Hierarchy { l1: Cache::new(l1) }
    }

    /// Walk the hierarchy for `addr`, updating all levels it touches.
    /// `l2`/`l3` are shared across the I and D streams, so they are passed
    /// in by the core each access.
    pub fn access(&mut self, addr: u64, l2: &mut Cache, l3: Option<&mut Cache>) -> HierLevel {
        if self.l1.access(addr) {
            return HierLevel::L1;
        }
        if l2.access(addr) {
            return HierLevel::L2;
        }
        if let Some(l3) = l3 {
            if l3.access(addr) {
                return HierLevel::L3;
            }
        }
        HierLevel::Memory
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CacheGeometry;

    fn tiny() -> Cache {
        // 2 sets x 2 ways x 64B lines = 256 B.
        Cache::new(CacheGeometry {
            size_kb: 1,
            line_b: 64,
            assoc: 8,
        })
    }

    #[test]
    fn repeat_access_hits() {
        let mut c = tiny();
        assert!(!c.access(0x1000));
        assert!(c.access(0x1000));
        assert!(c.access(0x1008), "same line, different offset");
        assert_eq!(c.misses(), 1);
        assert_eq!(c.accesses(), 3);
    }

    #[test]
    fn lru_evicts_oldest() {
        // 64B lines, 1KB, 2-way => 8 sets. Use addresses mapping to set 0:
        // line numbers multiples of 8.
        let mut c = Cache::new(CacheGeometry {
            size_kb: 1,
            line_b: 64,
            assoc: 2,
        });
        let a = |line: u64| line * 8 * 64; // distinct tags, same set
        assert!(!c.access(a(1)));
        assert!(!c.access(a(2)));
        assert!(c.access(a(1))); // 1 is MRU now
        assert!(!c.access(a(3))); // evicts 2 (LRU)
        assert!(c.access(a(1)));
        assert!(!c.access(a(2)), "2 was evicted");
    }

    #[test]
    fn capacity_miss_behaviour() {
        // Working set of 32 lines in a 16-line cache: every access misses
        // under LRU with a cyclic scan.
        let mut c = Cache::new(CacheGeometry {
            size_kb: 1,
            line_b: 64,
            assoc: 16,
        });
        for rep in 0..4 {
            for i in 0..32u64 {
                let hit = c.access(i * 64);
                if rep > 0 {
                    assert!(!hit, "cyclic scan larger than capacity must thrash");
                }
            }
        }
    }

    #[test]
    fn small_working_set_fits() {
        let mut c = tiny();
        for _ in 0..10 {
            for i in 0..4u64 {
                c.access(i * 64);
            }
        }
        // 4 compulsory misses, everything else hits.
        assert_eq!(c.misses(), 4);
    }

    #[test]
    fn bigger_cache_never_misses_more() {
        // Inclusion-style sanity: on the same trace, a 4KB cache should miss
        // at most as often as a 1KB cache with equal lines/assoc.
        let trace: Vec<u64> = (0..5000u64)
            .map(|i| (i * 2654435761) % (8 * 1024))
            .collect();
        let mut small = Cache::new(CacheGeometry {
            size_kb: 1,
            line_b: 64,
            assoc: 4,
        });
        let mut large = Cache::new(CacheGeometry {
            size_kb: 4,
            line_b: 64,
            assoc: 4,
        });
        let mut small_miss = 0;
        let mut large_miss = 0;
        for &a in &trace {
            if !small.access(a) {
                small_miss += 1;
            }
            if !large.access(a) {
                large_miss += 1;
            }
        }
        assert!(large_miss <= small_miss);
    }

    #[test]
    fn probe_does_not_mutate() {
        let mut c = tiny();
        c.access(0x40);
        let before = (c.accesses(), c.misses());
        assert!(c.probe(0x40));
        assert!(!c.probe(0xFFFF_0000));
        assert_eq!((c.accesses(), c.misses()), before);
    }

    #[test]
    fn hierarchy_escalates_levels() {
        let mut h = Hierarchy::new(CacheGeometry {
            size_kb: 1,
            line_b: 32,
            assoc: 2,
        });
        // Fully associative L2 (one 32-way set) so the thrash pattern below
        // evicts from L1 but stays resident in L2.
        let mut l2 = Cache::new(CacheGeometry {
            size_kb: 4,
            line_b: 128,
            assoc: 32,
        });
        let mut l3 = Cache::new(CacheGeometry {
            size_kb: 64,
            line_b: 256,
            assoc: 8,
        });
        assert_eq!(
            h.access(0x123456, &mut l2, Some(&mut l3)),
            HierLevel::Memory
        );
        assert_eq!(h.access(0x123456, &mut l2, Some(&mut l3)), HierLevel::L1);
        // Evict from the 2-way L1 set by touching 8 conflicting lines
        // (stride = sets * line = 16 * 32 bytes).
        for i in 1..=8u64 {
            h.access(0x123456 + i * 16 * 32, &mut l2, Some(&mut l3));
        }
        let lvl = h.access(0x123456, &mut l2, Some(&mut l3));
        assert_eq!(lvl, HierLevel::L2);
    }

    #[test]
    fn latency_model_is_monotone() {
        let m = LatencyModel::default();
        assert!(m.l1 < m.l2 && m.l2 < m.l3 && m.l3 < m.memory);
        assert_eq!(m.for_level(HierLevel::L2), m.l2);
    }
}
