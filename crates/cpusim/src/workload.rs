//! Synthetic SPEC CPU2000-like workload profiles.
//!
//! The paper's sampled-DSE study simulates SimPoint intervals of twelve SPEC
//! CPU2000 applications and presents five (applu, equake, gcc, mesa, mcf).
//! We cannot ship SPEC binaries, so each benchmark is replaced by a
//! *workload profile*: a statistical description of the instruction stream —
//! operation mix, memory footprint and locality, branch population
//! behaviour, and dependency structure — from which [`crate::trace`]
//! deterministically synthesizes instruction traces.
//!
//! The profiles are tuned so the *response* of cycles to the Table-1 design
//! parameters matches each application's published character:
//!
//! * **mcf** — pointer-chasing over a multi-megabyte graph: dependent loads,
//!   enormous data footprint, very low locality. The paper reports the
//!   widest cycle range (6.38×) — cache parameters dominate.
//! * **gcc** — huge *code* footprint and branchy control flow: L1I size and
//!   the branch predictor dominate (paper range 5.27×).
//! * **applu / equake / mesa** — floating-point kernels with regular
//!   (applu), sparse-irregular (equake), and mixed (mesa) access patterns;
//!   narrower ranges (1.62×/1.73×/2.22×).

use serde::{Deserialize, Serialize};

/// The benchmarks available to the simulator.
///
/// The five the paper presents, plus seven more from the Phansalkar-style
/// SPEC subset so downstream users can extend the study (`ALL12`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Benchmark {
    /// SPEC fp: PDE solver, regular strided loops.
    Applu,
    /// SPEC fp: earthquake FEM, sparse irregular access.
    Equake,
    /// SPEC int: compiler, huge code footprint, branchy.
    Gcc,
    /// SPEC fp: OpenGL software renderer, mixed behaviour.
    Mesa,
    /// SPEC int: network-flow optimizer, pointer chasing, cache-hostile.
    Mcf,
    /// SPEC int: compression, small hot loops.
    Gzip,
    /// SPEC int: FPGA place & route, moderate footprint.
    Vpr,
    /// SPEC fp: neural-net image recognition, streaming fp.
    Art,
    /// SPEC fp: shallow-water model, large regular arrays.
    Swim,
    /// SPEC int: compression (Burrows–Wheeler), phase-heavy.
    Bzip2,
    /// SPEC int: place & route, pointer-heavy medium footprint.
    Twolf,
    /// SPEC fp: number theory, long fp dependency chains.
    Lucas,
}

impl Benchmark {
    /// The five applications whose results the paper presents (Figures 2–6).
    pub const PRESENTED: [Benchmark; 5] = [
        Benchmark::Applu,
        Benchmark::Equake,
        Benchmark::Gcc,
        Benchmark::Mesa,
        Benchmark::Mcf,
    ];

    /// The full twelve-application subset (§4.1: "we have selected 12
    /// applications from the SPEC2000 benchmark").
    pub const ALL12: [Benchmark; 12] = [
        Benchmark::Applu,
        Benchmark::Equake,
        Benchmark::Gcc,
        Benchmark::Mesa,
        Benchmark::Mcf,
        Benchmark::Gzip,
        Benchmark::Vpr,
        Benchmark::Art,
        Benchmark::Swim,
        Benchmark::Bzip2,
        Benchmark::Twolf,
        Benchmark::Lucas,
    ];

    /// Lower-case benchmark name as the paper writes it.
    pub fn name(self) -> &'static str {
        match self {
            Benchmark::Applu => "applu",
            Benchmark::Equake => "equake",
            Benchmark::Gcc => "gcc",
            Benchmark::Mesa => "mesa",
            Benchmark::Mcf => "mcf",
            Benchmark::Gzip => "gzip",
            Benchmark::Vpr => "vpr",
            Benchmark::Art => "art",
            Benchmark::Swim => "swim",
            Benchmark::Bzip2 => "bzip2",
            Benchmark::Twolf => "twolf",
            Benchmark::Lucas => "lucas",
        }
    }

    /// Parse a benchmark from its lower-case name.
    pub fn from_name(name: &str) -> Option<Benchmark> {
        Benchmark::ALL12.iter().copied().find(|b| b.name() == name)
    }

    /// The workload profile describing this benchmark's behaviour.
    pub fn profile(self) -> WorkloadProfile {
        WorkloadProfile::for_benchmark(self)
    }
}

/// Fractions of each instruction class in the dynamic stream.
///
/// Must sum to 1.0 (checked by [`OpMix::validate`]). Branches are emitted at
/// basic-block boundaries; the branch fraction therefore determines mean
/// block length.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct OpMix {
    /// Integer ALU fraction.
    pub ialu: f64,
    /// Integer multiply fraction.
    pub imult: f64,
    /// FP add fraction.
    pub fpalu: f64,
    /// FP multiply fraction.
    pub fpmult: f64,
    /// Load fraction.
    pub load: f64,
    /// Store fraction.
    pub store: f64,
    /// Branch fraction.
    pub branch: f64,
}

impl OpMix {
    /// Sum of all fractions (should be ≈ 1.0).
    pub fn total(&self) -> f64 {
        self.ialu + self.imult + self.fpalu + self.fpmult + self.load + self.store + self.branch
    }

    /// Panics unless the mix sums to 1 within tolerance.
    pub fn validate(&self) {
        let t = self.total();
        assert!((t - 1.0).abs() < 1e-9, "OpMix must sum to 1.0, got {t}");
        for (name, v) in [
            ("ialu", self.ialu),
            ("imult", self.imult),
            ("fpalu", self.fpalu),
            ("fpmult", self.fpmult),
            ("load", self.load),
            ("store", self.store),
            ("branch", self.branch),
        ] {
            assert!((0.0..=1.0).contains(&v), "OpMix.{name} out of range: {v}");
        }
    }
}

/// Composition of the static branch population.
///
/// Fractions over static branches; must sum to 1. "Biased" branches are
/// almost always taken (or not) — any predictor handles them. "Patterned"
/// branches repeat short history patterns — only history-based (2-level,
/// combination) predictors capture them. "Random" branches flip coins with
/// moderate bias — nothing but the perfect predictor does well.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct BranchMix {
    /// Fraction of strongly biased static branches.
    pub biased: f64,
    /// Fraction of short-pattern (history-predictable) static branches.
    pub patterned: f64,
    /// Fraction of weakly biased random static branches.
    pub random: f64,
    /// Taken probability of the random population (0.5 = hardest).
    pub random_taken_p: f64,
}

/// One execution phase: a multiplicative modulation of the base profile.
///
/// Real programs move through phases (the premise of SimPoint). The trace
/// generator cycles through these phases; the BBV clustering in
/// [`crate::simpoint`] should rediscover them.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Phase {
    /// Scales the data footprint (1.0 = base).
    pub footprint_scale: f64,
    /// Scales the fraction of random (vs. sequential) data accesses.
    pub randomness_scale: f64,
    /// Offset added to every basic-block id, giving phases disjoint code.
    pub block_offset: u32,
    /// Relative weight: fraction of execution spent in this phase.
    pub weight: f64,
}

/// Full statistical description of one benchmark's dynamic behaviour.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorkloadProfile {
    /// Which benchmark this profile describes.
    pub benchmark: Benchmark,
    /// Whether the paper classifies it as floating point.
    pub is_fp: bool,
    /// Dynamic operation mix.
    pub op_mix: OpMix,
    /// Data footprint in bytes (distinct addressable region).
    pub data_footprint: u64,
    /// Fraction of data accesses that are random (Zipf) rather than
    /// sequential strides.
    pub data_randomness: f64,
    /// Zipf exponent of the random access component (higher = hotter head,
    /// more cache-friendly).
    pub data_zipf_s: f64,
    /// Stride in bytes of the sequential access component.
    pub stride_b: u64,
    /// Fraction of loads whose address depends on the previous load
    /// (pointer chasing — serializes misses).
    pub dependent_load_frac: f64,
    /// Number of static basic blocks (code footprint = blocks × block
    /// bytes).
    pub code_blocks: u32,
    /// Zipf exponent over basic blocks (code locality).
    pub code_zipf_s: f64,
    /// Static branch population behaviour.
    pub branch_mix: BranchMix,
    /// Mean register dependency distance (higher = more ILP).
    pub mean_dep_distance: f64,
    /// Execution phases.
    pub phases: Vec<Phase>,
    /// Instructions per phase segment before rotating to the next phase.
    pub phase_len: u64,
}

impl WorkloadProfile {
    /// Construct the tuned profile for a benchmark.
    pub fn for_benchmark(b: Benchmark) -> WorkloadProfile {
        const KB: u64 = 1024;
        let two_phase = |off: u32| {
            vec![
                Phase {
                    footprint_scale: 1.0,
                    randomness_scale: 1.0,
                    block_offset: 0,
                    weight: 0.6,
                },
                Phase {
                    footprint_scale: 1.35,
                    randomness_scale: 1.2,
                    block_offset: off,
                    weight: 0.4,
                },
            ]
        };
        match b {
            Benchmark::Applu => WorkloadProfile {
                benchmark: b,
                is_fp: true,
                op_mix: OpMix {
                    ialu: 0.22,
                    imult: 0.01,
                    fpalu: 0.26,
                    fpmult: 0.18,
                    load: 0.21,
                    store: 0.08,
                    branch: 0.04,
                },
                data_footprint: 224 * KB,
                data_randomness: 0.12,
                data_zipf_s: 1.1,
                stride_b: 8,
                dependent_load_frac: 0.02,
                code_blocks: 220,
                code_zipf_s: 1.3,
                branch_mix: BranchMix {
                    biased: 0.85,
                    patterned: 0.12,
                    random: 0.03,
                    random_taken_p: 0.55,
                },
                mean_dep_distance: 7.0,
                phases: two_phase(96),
                phase_len: 40_000,
            },
            Benchmark::Equake => WorkloadProfile {
                benchmark: b,
                is_fp: true,
                op_mix: OpMix {
                    ialu: 0.24,
                    imult: 0.01,
                    fpalu: 0.24,
                    fpmult: 0.14,
                    load: 0.25,
                    store: 0.07,
                    branch: 0.05,
                },
                data_footprint: 288 * KB,
                data_randomness: 0.30,
                data_zipf_s: 1.05,
                stride_b: 8,
                dependent_load_frac: 0.08,
                code_blocks: 180,
                code_zipf_s: 1.4,
                branch_mix: BranchMix {
                    biased: 0.80,
                    patterned: 0.13,
                    random: 0.07,
                    random_taken_p: 0.6,
                },
                mean_dep_distance: 5.0,
                phases: two_phase(64),
                phase_len: 50_000,
            },
            Benchmark::Gcc => WorkloadProfile {
                benchmark: b,
                is_fp: false,
                op_mix: OpMix {
                    ialu: 0.42,
                    imult: 0.01,
                    fpalu: 0.0,
                    fpmult: 0.0,
                    load: 0.26,
                    store: 0.13,
                    branch: 0.18,
                },
                data_footprint: 320 * KB,
                data_randomness: 0.35,
                data_zipf_s: 1.05,
                stride_b: 4,
                dependent_load_frac: 0.08,
                code_blocks: 2200,
                code_zipf_s: 0.95,
                branch_mix: BranchMix {
                    biased: 0.45,
                    patterned: 0.30,
                    random: 0.25,
                    random_taken_p: 0.55,
                },
                mean_dep_distance: 3.5,
                phases: vec![
                    Phase {
                        footprint_scale: 1.0,
                        randomness_scale: 1.0,
                        block_offset: 0,
                        weight: 0.4,
                    },
                    Phase {
                        footprint_scale: 1.5,
                        randomness_scale: 1.3,
                        block_offset: 700,
                        weight: 0.35,
                    },
                    Phase {
                        footprint_scale: 0.7,
                        randomness_scale: 0.8,
                        block_offset: 1400,
                        weight: 0.25,
                    },
                ],
                phase_len: 30_000,
            },
            Benchmark::Mesa => WorkloadProfile {
                benchmark: b,
                is_fp: true,
                op_mix: OpMix {
                    ialu: 0.30,
                    imult: 0.02,
                    fpalu: 0.17,
                    fpmult: 0.12,
                    load: 0.22,
                    store: 0.09,
                    branch: 0.08,
                },
                data_footprint: 320 * KB,
                data_randomness: 0.28,
                data_zipf_s: 1.05,
                stride_b: 16,
                dependent_load_frac: 0.06,
                code_blocks: 520,
                code_zipf_s: 1.25,
                branch_mix: BranchMix {
                    biased: 0.70,
                    patterned: 0.20,
                    random: 0.10,
                    random_taken_p: 0.5,
                },
                mean_dep_distance: 5.0,
                phases: two_phase(200),
                phase_len: 45_000,
            },
            Benchmark::Mcf => WorkloadProfile {
                benchmark: b,
                is_fp: false,
                op_mix: OpMix {
                    ialu: 0.34,
                    imult: 0.01,
                    fpalu: 0.0,
                    fpmult: 0.0,
                    load: 0.37,
                    store: 0.09,
                    branch: 0.19,
                },
                data_footprint: 640 * KB,
                data_randomness: 0.90,
                data_zipf_s: 0.40,
                stride_b: 8,
                dependent_load_frac: 0.65,
                code_blocks: 350,
                code_zipf_s: 1.2,
                branch_mix: BranchMix {
                    biased: 0.50,
                    patterned: 0.20,
                    random: 0.30,
                    random_taken_p: 0.5,
                },
                mean_dep_distance: 2.2,
                phases: two_phase(128),
                phase_len: 60_000,
            },
            Benchmark::Gzip => WorkloadProfile {
                benchmark: b,
                is_fp: false,
                op_mix: OpMix {
                    ialu: 0.45,
                    imult: 0.01,
                    fpalu: 0.0,
                    fpmult: 0.0,
                    load: 0.25,
                    store: 0.12,
                    branch: 0.17,
                },
                data_footprint: 192 * KB,
                data_randomness: 0.25,
                data_zipf_s: 1.2,
                stride_b: 1,
                dependent_load_frac: 0.05,
                code_blocks: 300,
                code_zipf_s: 1.5,
                branch_mix: BranchMix {
                    biased: 0.55,
                    patterned: 0.25,
                    random: 0.20,
                    random_taken_p: 0.55,
                },
                mean_dep_distance: 4.0,
                phases: two_phase(100),
                phase_len: 35_000,
            },
            Benchmark::Vpr => WorkloadProfile {
                benchmark: b,
                is_fp: false,
                op_mix: OpMix {
                    ialu: 0.38,
                    imult: 0.02,
                    fpalu: 0.06,
                    fpmult: 0.03,
                    load: 0.27,
                    store: 0.10,
                    branch: 0.14,
                },
                data_footprint: 512 * KB,
                data_randomness: 0.40,
                data_zipf_s: 0.95,
                stride_b: 8,
                dependent_load_frac: 0.15,
                code_blocks: 900,
                code_zipf_s: 1.1,
                branch_mix: BranchMix {
                    biased: 0.50,
                    patterned: 0.28,
                    random: 0.22,
                    random_taken_p: 0.5,
                },
                mean_dep_distance: 4.0,
                phases: two_phase(320),
                phase_len: 40_000,
            },
            Benchmark::Art => WorkloadProfile {
                benchmark: b,
                is_fp: true,
                op_mix: OpMix {
                    ialu: 0.20,
                    imult: 0.01,
                    fpalu: 0.28,
                    fpmult: 0.20,
                    load: 0.24,
                    store: 0.04,
                    branch: 0.03,
                },
                data_footprint: 384 * KB,
                data_randomness: 0.15,
                data_zipf_s: 0.8,
                stride_b: 4,
                dependent_load_frac: 0.02,
                code_blocks: 120,
                code_zipf_s: 1.6,
                branch_mix: BranchMix {
                    biased: 0.88,
                    patterned: 0.09,
                    random: 0.03,
                    random_taken_p: 0.6,
                },
                mean_dep_distance: 8.0,
                phases: two_phase(48),
                phase_len: 50_000,
            },
            Benchmark::Swim => WorkloadProfile {
                benchmark: b,
                is_fp: true,
                op_mix: OpMix {
                    ialu: 0.18,
                    imult: 0.01,
                    fpalu: 0.30,
                    fpmult: 0.20,
                    load: 0.23,
                    store: 0.06,
                    branch: 0.02,
                },
                data_footprint: 448 * KB,
                data_randomness: 0.08,
                data_zipf_s: 1.0,
                stride_b: 8,
                dependent_load_frac: 0.01,
                code_blocks: 90,
                code_zipf_s: 1.7,
                branch_mix: BranchMix {
                    biased: 0.92,
                    patterned: 0.06,
                    random: 0.02,
                    random_taken_p: 0.6,
                },
                mean_dep_distance: 9.0,
                phases: two_phase(32),
                phase_len: 60_000,
            },
            Benchmark::Bzip2 => WorkloadProfile {
                benchmark: b,
                is_fp: false,
                op_mix: OpMix {
                    ialu: 0.44,
                    imult: 0.01,
                    fpalu: 0.0,
                    fpmult: 0.0,
                    load: 0.26,
                    store: 0.13,
                    branch: 0.16,
                },
                data_footprint: 384 * KB,
                data_randomness: 0.35,
                data_zipf_s: 1.0,
                stride_b: 1,
                dependent_load_frac: 0.08,
                code_blocks: 420,
                code_zipf_s: 1.3,
                branch_mix: BranchMix {
                    biased: 0.52,
                    patterned: 0.28,
                    random: 0.20,
                    random_taken_p: 0.5,
                },
                mean_dep_distance: 3.5,
                phases: vec![
                    Phase {
                        footprint_scale: 0.6,
                        randomness_scale: 0.7,
                        block_offset: 0,
                        weight: 0.5,
                    },
                    Phase {
                        footprint_scale: 1.6,
                        randomness_scale: 1.4,
                        block_offset: 140,
                        weight: 0.5,
                    },
                ],
                phase_len: 30_000,
            },
            Benchmark::Twolf => WorkloadProfile {
                benchmark: b,
                is_fp: false,
                op_mix: OpMix {
                    ialu: 0.40,
                    imult: 0.02,
                    fpalu: 0.03,
                    fpmult: 0.01,
                    load: 0.28,
                    store: 0.10,
                    branch: 0.16,
                },
                data_footprint: 256 * KB,
                data_randomness: 0.50,
                data_zipf_s: 1.1,
                stride_b: 8,
                dependent_load_frac: 0.20,
                code_blocks: 700,
                code_zipf_s: 1.2,
                branch_mix: BranchMix {
                    biased: 0.48,
                    patterned: 0.27,
                    random: 0.25,
                    random_taken_p: 0.5,
                },
                mean_dep_distance: 3.0,
                phases: two_phase(256),
                phase_len: 40_000,
            },
            Benchmark::Lucas => WorkloadProfile {
                benchmark: b,
                is_fp: true,
                op_mix: OpMix {
                    ialu: 0.15,
                    imult: 0.02,
                    fpalu: 0.28,
                    fpmult: 0.26,
                    load: 0.20,
                    store: 0.06,
                    branch: 0.03,
                },
                data_footprint: 320 * KB,
                data_randomness: 0.10,
                data_zipf_s: 1.0,
                stride_b: 8,
                dependent_load_frac: 0.02,
                code_blocks: 110,
                code_zipf_s: 1.6,
                branch_mix: BranchMix {
                    biased: 0.90,
                    patterned: 0.07,
                    random: 0.03,
                    random_taken_p: 0.6,
                },
                mean_dep_distance: 4.0,
                phases: two_phase(40),
                phase_len: 55_000,
            },
        }
    }

    /// Validate internal consistency; panics on malformed profiles. Called
    /// by the trace generator.
    pub fn validate(&self) {
        self.op_mix.validate();
        let bm = &self.branch_mix;
        let t = bm.biased + bm.patterned + bm.random;
        assert!((t - 1.0).abs() < 1e-9, "BranchMix must sum to 1, got {t}");
        assert!(
            (0.0..=1.0).contains(&bm.random_taken_p),
            "random_taken_p must be a probability"
        );
        assert!(
            (0.0..=1.0).contains(&self.data_randomness),
            "data_randomness must be a fraction in [0, 1]"
        );
        assert!(
            (0.0..=1.0).contains(&self.dependent_load_frac),
            "dependent_load_frac must be a fraction in [0, 1]"
        );
        assert!(self.data_footprint > 0, "data_footprint must be nonzero");
        assert!(self.code_blocks > 0, "code_blocks must be nonzero");
        assert!(
            self.mean_dep_distance >= 1.0,
            "mean_dep_distance below 1 instruction"
        );
        assert!(!self.phases.is_empty(), "profile needs at least one phase");
        let w: f64 = self.phases.iter().map(|p| p.weight).sum();
        assert!(
            (w - 1.0).abs() < 1e-9,
            "phase weights must sum to 1, got {w}"
        );
        assert!(self.phase_len > 0, "phase_len must be nonzero");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_profiles_validate() {
        for b in Benchmark::ALL12 {
            b.profile().validate();
        }
    }

    #[test]
    fn presented_is_subset_of_all12() {
        for b in Benchmark::PRESENTED {
            assert!(Benchmark::ALL12.contains(&b));
        }
    }

    #[test]
    fn names_roundtrip() {
        for b in Benchmark::ALL12 {
            assert_eq!(Benchmark::from_name(b.name()), Some(b));
        }
        assert_eq!(Benchmark::from_name("nosuch"), None);
    }

    #[test]
    fn mcf_is_most_cache_hostile() {
        let mcf = Benchmark::Mcf.profile();
        for b in Benchmark::PRESENTED {
            if b != Benchmark::Mcf {
                let p = b.profile();
                assert!(mcf.data_footprint >= p.data_footprint);
                assert!(mcf.dependent_load_frac >= p.dependent_load_frac);
            }
        }
    }

    #[test]
    fn gcc_has_largest_code_footprint() {
        let gcc = Benchmark::Gcc.profile();
        for b in Benchmark::ALL12 {
            if b != Benchmark::Gcc {
                assert!(gcc.code_blocks > b.profile().code_blocks);
            }
        }
    }

    #[test]
    fn fp_flags_match_paper() {
        assert!(Benchmark::Applu.profile().is_fp);
        assert!(Benchmark::Equake.profile().is_fp);
        assert!(Benchmark::Mesa.profile().is_fp);
        assert!(!Benchmark::Gcc.profile().is_fp);
        assert!(!Benchmark::Mcf.profile().is_fp);
    }

    #[test]
    fn int_benchmarks_have_no_fp_ops() {
        for b in [
            Benchmark::Gcc,
            Benchmark::Mcf,
            Benchmark::Gzip,
            Benchmark::Bzip2,
        ] {
            let p = b.profile();
            assert_eq!(p.op_mix.fpalu + p.op_mix.fpmult, 0.0, "{}", b.name());
        }
    }
}
