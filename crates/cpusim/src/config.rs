//! The microarchitecture configuration space of Table 1.
//!
//! Twenty-four parameters describe one simulated processor. The paper's
//! study enumerates 4608 configurations per benchmark; Table 1's free knobs
//! would over-count that, so — as documented in DESIGN.md §5 — this module
//! fixes the canonical tying: L1 line sizes move together, L2 size and
//! associativity move together, the L3's line/associativity follow its
//! presence, RUU and LSQ scale together, the two TLBs scale together, and
//! the functional-unit mix follows the pipeline width. The simulator itself
//! ([`CpuConfig`]) treats all 24 knobs independently; the tying lives only
//! in [`DesignSpace::table1`].

use serde::{Deserialize, Serialize};

/// Branch predictor selection (Table 1: Perfect, Bimodal, 2-level,
/// Combination).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BranchPredictorKind {
    /// Oracle predictor: never mispredicts. Upper bound used by the paper.
    Perfect,
    /// Per-branch 2-bit saturating counters.
    Bimodal,
    /// Two-level adaptive (gshare): global history XOR PC indexes counters.
    TwoLevel,
    /// Tournament of bimodal and two-level with a chooser table.
    Combination,
}

impl BranchPredictorKind {
    /// All four predictor kinds, in Table 1 order.
    pub const ALL: [BranchPredictorKind; 4] = [
        BranchPredictorKind::Perfect,
        BranchPredictorKind::Bimodal,
        BranchPredictorKind::TwoLevel,
        BranchPredictorKind::Combination,
    ];

    /// Stable numeric code used when a model needs a numeric encoding.
    pub fn code(self) -> usize {
        match self {
            BranchPredictorKind::Perfect => 0,
            BranchPredictorKind::Bimodal => 1,
            BranchPredictorKind::TwoLevel => 2,
            BranchPredictorKind::Combination => 3,
        }
    }

    /// Human-readable name matching the paper's Table 1.
    pub fn name(self) -> &'static str {
        match self {
            BranchPredictorKind::Perfect => "Perfect",
            BranchPredictorKind::Bimodal => "Bimodal",
            BranchPredictorKind::TwoLevel => "2-level",
            BranchPredictorKind::Combination => "Combination",
        }
    }
}

/// Geometry of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CacheGeometry {
    /// Total capacity in kilobytes.
    pub size_kb: u32,
    /// Line (block) size in bytes.
    pub line_b: u32,
    /// Set associativity (ways).
    pub assoc: u32,
}

impl CacheGeometry {
    /// Number of sets implied by the geometry.
    pub(crate) fn num_sets(&self) -> usize {
        let lines = (self.size_kb as usize * 1024) / self.line_b as usize;
        (lines / self.assoc as usize).max(1)
    }
}

/// Functional unit counts (Table 1: ialu, imult, memport, fpalu, fpmult).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FuConfig {
    /// Integer ALUs.
    pub ialu: u8,
    /// Integer multiply/divide units.
    pub imult: u8,
    /// Cache ports (load/store issue slots per cycle).
    pub memport: u8,
    /// Floating-point adders.
    pub fpalu: u8,
    /// Floating-point multiply/divide units.
    pub fpmult: u8,
}

impl FuConfig {
    /// The 4-wide FU mix from Table 1: 4/2/2/4/2.
    pub(crate) const NARROW: FuConfig = FuConfig {
        ialu: 4,
        imult: 2,
        memport: 2,
        fpalu: 4,
        fpmult: 2,
    };
    /// The 8-wide FU mix from Table 1: 8/4/4/8/4.
    pub const WIDE: FuConfig = FuConfig {
        ialu: 8,
        imult: 4,
        memport: 4,
        fpalu: 8,
        fpmult: 4,
    };
}

/// One point in the microprocessor design space — all 24 Table-1 parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CpuConfig {
    /// L1 data cache geometry (16/32/64 KB, 32/64 B lines, 4-way).
    pub l1d: CacheGeometry,
    /// L1 instruction cache geometry (16/32/64 KB, 32/64 B lines, 4-way).
    pub l1i: CacheGeometry,
    /// Unified L2 geometry (256/1024 KB, 128 B lines, 4/8-way).
    pub l2: CacheGeometry,
    /// Optional L3 (None, or 8 MB / 256 B / 8-way).
    pub l3: Option<CacheGeometry>,
    /// Branch predictor kind.
    pub bpred: BranchPredictorKind,
    /// Decode/issue/commit width (4 or 8).
    pub width: u8,
    /// Whether wrong-path instructions are fetched and issued after a
    /// mispredicted branch (SimpleScalar's `-issue:wrongpath`).
    pub issue_wrong_path: bool,
    /// Register Update Unit entries (128 or 256).
    pub ruu_size: u32,
    /// Load/store queue entries (64 or 128).
    pub lsq_size: u32,
    /// Instruction TLB reach in KB (256 or 1024).
    pub itlb_kb: u32,
    /// Data TLB reach in KB (512 or 2048).
    pub dtlb_kb: u32,
    /// Functional unit mix.
    pub fu: FuConfig,
}

impl CpuConfig {
    /// A sane mid-range baseline (32 KB L1s, 256 KB L2, no L3, combining
    /// predictor, 4-wide). Used by examples and as a test fixture.
    pub fn baseline() -> Self {
        CpuConfig {
            l1d: CacheGeometry {
                size_kb: 32,
                line_b: 64,
                assoc: 4,
            },
            l1i: CacheGeometry {
                size_kb: 32,
                line_b: 64,
                assoc: 4,
            },
            l2: CacheGeometry {
                size_kb: 256,
                line_b: 128,
                assoc: 4,
            },
            l3: None,
            bpred: BranchPredictorKind::Combination,
            width: 4,
            issue_wrong_path: false,
            ruu_size: 128,
            lsq_size: 64,
            itlb_kb: 256,
            dtlb_kb: 512,
            fu: FuConfig::NARROW,
        }
    }

    /// Encode the configuration as the model-facing feature vector.
    ///
    /// Layout (`feature_names` gives the labels): all numeric Table-1
    /// parameters plus the branch predictor as a single numeric code. The
    /// ML layer re-encodes the predictor one-hot for neural networks; linear
    /// regression consumes the numeric columns directly, mirroring
    /// Clementine's "numeric inputs only" behaviour (§3.4).
    pub fn features(&self) -> Vec<f64> {
        vec![
            self.l1d.size_kb as f64,
            self.l1d.line_b as f64,
            self.l1d.assoc as f64,
            self.l1i.size_kb as f64,
            self.l1i.line_b as f64,
            self.l1i.assoc as f64,
            self.l2.size_kb as f64,
            self.l2.line_b as f64,
            self.l2.assoc as f64,
            self.l3.map_or(0.0, |c| c.size_kb as f64),
            self.l3.map_or(0.0, |c| c.line_b as f64),
            self.l3.map_or(0.0, |c| c.assoc as f64),
            self.bpred.code() as f64,
            self.width as f64,
            if self.issue_wrong_path { 1.0 } else { 0.0 },
            self.ruu_size as f64,
            self.lsq_size as f64,
            self.itlb_kb as f64,
            self.dtlb_kb as f64,
            self.fu.ialu as f64,
            self.fu.imult as f64,
            self.fu.memport as f64,
            self.fu.fpalu as f64,
            self.fu.fpmult as f64,
        ]
    }

    /// Names for the columns of [`CpuConfig::features`], in order.
    pub fn feature_names() -> Vec<&'static str> {
        vec![
            "l1d_size_kb",
            "l1d_line_b",
            "l1d_assoc",
            "l1i_size_kb",
            "l1i_line_b",
            "l1i_assoc",
            "l2_size_kb",
            "l2_line_b",
            "l2_assoc",
            "l3_size_kb",
            "l3_line_b",
            "l3_assoc",
            "bpred",
            "width",
            "issue_wrong_path",
            "ruu_size",
            "lsq_size",
            "itlb_kb",
            "dtlb_kb",
            "fu_ialu",
            "fu_imult",
            "fu_memport",
            "fu_fpalu",
            "fu_fpmult",
        ]
    }

    /// Index of the branch-predictor column within [`CpuConfig::features`].
    pub const BPRED_FEATURE_INDEX: usize = 12;
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Incremental FNV-1a hasher used for space identity (content hashes).
#[derive(Debug, Clone, Copy)]
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(FNV_OFFSET)
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    fn write_str(&mut self, s: &str) {
        self.write(s.as_bytes());
        // Field separator so "ab"+"c" and "a"+"bc" hash differently.
        self.write(&[0xff]);
    }

    fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    fn finish(self) -> u64 {
        self.0
    }
}

/// Per-axis value lists defining a generator-backed design space.
///
/// The spec generalizes the Table-1 lattice while preserving its canonical
/// tying (DESIGN.md §5): both L1 caches share one line-size axis and are
/// 4-way, the L2 line is fixed at 128 B, RUU/LSQ move together as a
/// `window` pair, the two TLBs move together as a `tlb` pair, and the
/// functional-unit mix is derived from the width by
/// [`SpaceSpec::fu_for_width`]. Axis order below is the enumeration order
/// (outermost first), chosen so [`SpaceSpec::table1`] reproduces the
/// historical `DesignSpace::table1()` sequence exactly.
#[derive(Debug, Clone, PartialEq)]
pub struct SpaceSpec {
    /// L1 data-cache sizes in KB (outermost axis).
    pub l1d_size_kb: Vec<u32>,
    /// L1 instruction-cache sizes in KB.
    pub l1i_size_kb: Vec<u32>,
    /// Branch predictor kinds.
    pub bpred: Vec<BranchPredictorKind>,
    /// Shared L1 line sizes in bytes.
    pub l1_line_b: Vec<u32>,
    /// Unified L2 geometries.
    pub l2: Vec<CacheGeometry>,
    /// Optional L3 geometries (`None` = no L3).
    pub l3: Vec<Option<CacheGeometry>>,
    /// Decode/issue/commit widths (FU mix derived per width).
    pub width: Vec<u8>,
    /// Wrong-path issue on/off.
    pub wrong_path: Vec<bool>,
    /// `(ruu_size, lsq_size)` window pairs.
    pub window: Vec<(u32, u32)>,
    /// `(itlb_kb, dtlb_kb)` TLB reach pairs (innermost axis).
    pub tlb: Vec<(u32, u32)>,
}

impl SpaceSpec {
    /// The canonical Table-1 spec: exactly 4608 configurations, in the
    /// same order as the historical nested-loop enumeration.
    pub fn table1() -> Self {
        SpaceSpec {
            l1d_size_kb: vec![16, 32, 64],
            l1i_size_kb: vec![16, 32, 64],
            bpred: BranchPredictorKind::ALL.to_vec(),
            l1_line_b: vec![32, 64],
            l2: vec![
                CacheGeometry {
                    size_kb: 256,
                    line_b: 128,
                    assoc: 4,
                },
                CacheGeometry {
                    size_kb: 1024,
                    line_b: 128,
                    assoc: 8,
                },
            ],
            l3: vec![
                None,
                Some(CacheGeometry {
                    size_kb: 8192,
                    line_b: 256,
                    assoc: 8,
                }),
            ],
            width: vec![4, 8],
            wrong_path: vec![false, true],
            window: vec![(128, 64), (256, 128)],
            tlb: vec![(256, 512), (1024, 2048)],
        }
    }

    /// A tiny generated space (48 points) for shard smoke tests and CI:
    /// Table-1 values with the L1I, line, L2, L3, window, and TLB axes
    /// pinned to one level each.
    pub fn smoke() -> Self {
        SpaceSpec {
            l1d_size_kb: vec![16, 32, 64],
            l1i_size_kb: vec![32],
            bpred: BranchPredictorKind::ALL.to_vec(),
            l1_line_b: vec![64],
            l2: vec![CacheGeometry {
                size_kb: 256,
                line_b: 128,
                assoc: 4,
            }],
            l3: vec![None],
            width: vec![4, 8],
            wrong_path: vec![false, true],
            window: vec![(128, 64)],
            tlb: vec![(256, 512)],
        }
    }

    /// A million-point lattice (2,211,840 configurations) extending every
    /// Table-1 axis: 6·6·4·4·6·5·4·2·4·4. Enumerates lazily through
    /// [`DesignSpace::config_at`]; never materialize it.
    pub fn mega() -> Self {
        let l2 = [
            (128u32, 2u32),
            (256, 4),
            (512, 4),
            (1024, 8),
            (2048, 8),
            (4096, 16),
        ]
        .iter()
        .map(|&(size_kb, assoc)| CacheGeometry {
            size_kb,
            line_b: 128,
            assoc,
        })
        .collect();
        let l3 = [(2048u32, 8u32), (4096, 8), (8192, 8), (16384, 16)]
            .iter()
            .map(|&(size_kb, assoc)| {
                Some(CacheGeometry {
                    size_kb,
                    line_b: 256,
                    assoc,
                })
            })
            .collect::<Vec<_>>();
        SpaceSpec {
            l1d_size_kb: vec![8, 16, 32, 64, 128, 256],
            l1i_size_kb: vec![8, 16, 32, 64, 128, 256],
            bpred: BranchPredictorKind::ALL.to_vec(),
            l1_line_b: vec![16, 32, 64, 128],
            l2,
            l3: std::iter::once(None).chain(l3).collect(),
            width: vec![2, 4, 8, 16],
            wrong_path: vec![false, true],
            window: vec![(64, 32), (128, 64), (256, 128), (512, 256)],
            tlb: vec![(128, 256), (256, 512), (1024, 2048), (4096, 8192)],
        }
    }

    /// The FU mix tied to a pipeline width: `width` integer/FP ALUs and
    /// `width/2` (at least 1) of everything else. Reproduces Table 1's
    /// NARROW (4-wide) and WIDE (8-wide) mixes exactly.
    pub(crate) fn fu_for_width(width: u8) -> FuConfig {
        let half = (width / 2).max(1);
        FuConfig {
            ialu: width,
            imult: half,
            memport: half,
            fpalu: width,
            fpmult: half,
        }
    }

    /// Axis cardinalities, outermost first.
    fn radices(&self) -> [usize; 10] {
        [
            self.l1d_size_kb.len(),
            self.l1i_size_kb.len(),
            self.bpred.len(),
            self.l1_line_b.len(),
            self.l2.len(),
            self.l3.len(),
            self.width.len(),
            self.wrong_path.len(),
            self.window.len(),
            self.tlb.len(),
        ]
    }

    /// Number of lattice points, or a typed error if any axis is empty or
    /// the product overflows `usize`.
    pub(crate) fn try_len(&self) -> fault::Result<usize> {
        let mut n: usize = 1;
        for (axis, r) in Self::AXIS_NAMES.iter().zip(self.radices()) {
            if r == 0 {
                return Err(fault::Error::invalid(format!(
                    "space spec axis '{axis}' is empty"
                )));
            }
            n = n
                .checked_mul(r)
                .ok_or_else(|| fault::Error::invalid("space spec size overflows usize"))?;
        }
        Ok(n)
    }

    const AXIS_NAMES: [&'static str; 10] = [
        "l1d_size_kb",
        "l1i_size_kb",
        "bpred",
        "l1_line_b",
        "l2",
        "l3",
        "width",
        "wrong_path",
        "window",
        "tlb",
    ];

    /// Check the spec is well-formed: non-empty axes, no duplicate values
    /// within an axis (duplicates would make [`SpaceSpec::index_of`]
    /// ambiguous and enumerate identical points twice), strictly positive
    /// geometry, and a size that fits `usize`.
    pub fn validate(&self) -> fault::Result<()> {
        self.try_len()?;
        fn distinct<T: PartialEq + std::fmt::Debug>(axis: &str, values: &[T]) -> fault::Result<()> {
            for (i, v) in values.iter().enumerate() {
                if values[..i].contains(v) {
                    return Err(fault::Error::invalid(format!(
                        "space spec axis '{axis}' repeats value {v:?}"
                    )));
                }
            }
            Ok(())
        }
        distinct("l1d_size_kb", &self.l1d_size_kb)?;
        distinct("l1i_size_kb", &self.l1i_size_kb)?;
        distinct("bpred", &self.bpred)?;
        distinct("l1_line_b", &self.l1_line_b)?;
        distinct("l2", &self.l2)?;
        distinct("l3", &self.l3)?;
        distinct("width", &self.width)?;
        distinct("wrong_path", &self.wrong_path)?;
        distinct("window", &self.window)?;
        distinct("tlb", &self.tlb)?;
        let positive = |axis: &str, ok: bool| {
            if ok {
                Ok(())
            } else {
                Err(fault::Error::invalid(format!(
                    "space spec axis '{axis}' contains a zero value"
                )))
            }
        };
        positive("l1d_size_kb", self.l1d_size_kb.iter().all(|&v| v > 0))?;
        positive("l1i_size_kb", self.l1i_size_kb.iter().all(|&v| v > 0))?;
        positive("l1_line_b", self.l1_line_b.iter().all(|&v| v > 0))?;
        let geom_ok = |g: &CacheGeometry| g.size_kb > 0 && g.line_b > 0 && g.assoc > 0;
        positive("l2", self.l2.iter().all(geom_ok))?;
        positive("l3", self.l3.iter().flatten().all(geom_ok))?;
        positive("width", self.width.iter().all(|&v| v > 0))?;
        positive("window", self.window.iter().all(|&(r, l)| r > 0 && l > 0))?;
        positive("tlb", self.tlb.iter().all(|&(i, d)| i > 0 && d > 0))?;
        Ok(())
    }

    /// FNV-1a hash of a canonical encoding of every axis value. Two specs
    /// hash equal iff they define the same lattice in the same order, so
    /// checkpoint headers can verify which space a ledger belongs to.
    pub fn content_hash(&self) -> u64 {
        let mut h = Fnv::new();
        h.write_str("spacespec.v1");
        for &v in &self.l1d_size_kb {
            h.write_u64(v as u64);
        }
        h.write_str("l1i");
        for &v in &self.l1i_size_kb {
            h.write_u64(v as u64);
        }
        h.write_str("bpred");
        for &b in &self.bpred {
            h.write_u64(b.code() as u64);
        }
        h.write_str("line");
        for &v in &self.l1_line_b {
            h.write_u64(v as u64);
        }
        h.write_str("l2");
        for g in &self.l2 {
            h.write_u64(g.size_kb as u64);
            h.write_u64(g.line_b as u64);
            h.write_u64(g.assoc as u64);
        }
        h.write_str("l3");
        for g in &self.l3 {
            match g {
                None => h.write_u64(0),
                Some(g) => {
                    h.write_u64(1);
                    h.write_u64(g.size_kb as u64);
                    h.write_u64(g.line_b as u64);
                    h.write_u64(g.assoc as u64);
                }
            }
        }
        h.write_str("width");
        for &v in &self.width {
            h.write_u64(v as u64);
        }
        h.write_str("wrong");
        for &v in &self.wrong_path {
            h.write_u64(v as u64);
        }
        h.write_str("window");
        for &(r, l) in &self.window {
            h.write_u64(r as u64);
            h.write_u64(l as u64);
        }
        h.write_str("tlb");
        for &(i, d) in &self.tlb {
            h.write_u64(i as u64);
            h.write_u64(d as u64);
        }
        h.finish()
    }

    /// Decode lattice index `idx` (mixed-radix, innermost axis fastest)
    /// into its configuration. `idx` must be below [`SpaceSpec::try_len`].
    pub fn config_at(&self, idx: usize) -> CpuConfig {
        let radices = self.radices();
        let mut rest = idx;
        let mut digits = [0usize; 10];
        for (d, &r) in digits.iter_mut().zip(radices.iter()).rev() {
            *d = rest % r;
            rest /= r;
        }
        assert!(
            rest == 0,
            "design-space index {idx} out of range for a {}-point spec",
            radices.iter().product::<usize>()
        );
        let line = self.l1_line_b[digits[3]];
        let width = self.width[digits[6]];
        let (ruu, lsq) = self.window[digits[8]];
        let (itlb, dtlb) = self.tlb[digits[9]];
        CpuConfig {
            l1d: CacheGeometry {
                size_kb: self.l1d_size_kb[digits[0]],
                line_b: line,
                assoc: 4,
            },
            l1i: CacheGeometry {
                size_kb: self.l1i_size_kb[digits[1]],
                line_b: line,
                assoc: 4,
            },
            l2: self.l2[digits[4]],
            l3: self.l3[digits[5]],
            bpred: self.bpred[digits[2]],
            width,
            issue_wrong_path: self.wrong_path[digits[7]],
            ruu_size: ruu,
            lsq_size: lsq,
            itlb_kb: itlb,
            dtlb_kb: dtlb,
            fu: Self::fu_for_width(width),
        }
    }

    /// Inverse of [`SpaceSpec::config_at`]: the lattice index of `config`,
    /// or `None` if the config is not a point of this spec (including any
    /// violation of the canonical tying, e.g. a free-standing FU mix).
    pub fn index_of(&self, config: &CpuConfig) -> Option<usize> {
        if config.l1d.assoc != 4
            || config.l1i.assoc != 4
            || config.l1d.line_b != config.l1i.line_b
            || config.fu != Self::fu_for_width(config.width)
        {
            return None;
        }
        let digits = [
            self.l1d_size_kb
                .iter()
                .position(|&v| v == config.l1d.size_kb)?,
            self.l1i_size_kb
                .iter()
                .position(|&v| v == config.l1i.size_kb)?,
            self.bpred.iter().position(|&v| v == config.bpred)?,
            self.l1_line_b
                .iter()
                .position(|&v| v == config.l1d.line_b)?,
            self.l2.iter().position(|&v| v == config.l2)?,
            self.l3.iter().position(|&v| v == config.l3)?,
            self.width.iter().position(|&v| v == config.width)?,
            self.wrong_path
                .iter()
                .position(|&v| v == config.issue_wrong_path)?,
            self.window
                .iter()
                .position(|&v| v == (config.ruu_size, config.lsq_size))?,
            self.tlb
                .iter()
                .position(|&v| v == (config.itlb_kb, config.dtlb_kb))?,
        ];
        let mut idx = 0usize;
        for (d, r) in digits.iter().zip(self.radices()) {
            idx = idx * r + d;
        }
        Some(idx)
    }
}

/// How a [`DesignSpace`] stores its points: an explicit list, or a
/// [`SpaceSpec`] that decodes configs on demand (with a lazily-filled
/// materialization cache for legacy `configs()` callers).
#[derive(Debug, Clone)]
enum Backing {
    Explicit(Vec<CpuConfig>),
    Generated {
        // Boxed: SpaceSpec is ~280 bytes of Vecs, far larger than the
        // Explicit variant (clippy::large_enum_variant).
        spec: Box<SpaceSpec>,
        len: usize,
        hash: u64,
        cache: std::sync::OnceLock<Vec<CpuConfig>>,
    },
}

/// An enumerable design space over [`CpuConfig`]s with a stable per-config
/// index and a content hash identifying the space.
#[derive(Debug, Clone)]
pub struct DesignSpace {
    backing: Backing,
}

impl DesignSpace {
    /// Build a lazily-enumerated space from a spec. Fails with
    /// [`fault::Error::InvalidInput`] if the spec is malformed (empty or
    /// duplicated axes, zero-sized geometry, size overflow).
    pub fn try_generate(spec: &SpaceSpec) -> fault::Result<Self> {
        spec.validate()?;
        let len = spec.try_len()?;
        Ok(DesignSpace {
            backing: Backing::Generated {
                hash: spec.content_hash(),
                len,
                spec: Box::new(spec.clone()),
                cache: std::sync::OnceLock::new(),
            },
        })
    }

    /// The canonical Table-1 lattice: exactly 4608 configurations.
    ///
    /// Free axes: L1D size ×3, L1I size ×3, branch predictor ×4, shared L1
    /// line size ×2, L2 {256 KB/4-way, 1024 KB/8-way} ×2, L3 present ×2,
    /// width (with tied FU mix) ×2, wrong-path issue ×2, window
    /// {RUU 128 + LSQ 64, RUU 256 + LSQ 128} ×2, TLB pair ×2. Since the
    /// generator refactor this is simply [`SpaceSpec::table1`].
    pub fn table1() -> Self {
        Self::try_generate(&SpaceSpec::table1())
            .expect("the canonical Table-1 spec is statically valid")
    }

    /// A reduced lattice for tests and quick demos: drops the TLB, window,
    /// and wrong-path axes (576 configurations).
    pub fn table1_reduced() -> Self {
        let configs = Self::table1()
            .iter()
            .filter(|c| !c.issue_wrong_path && c.ruu_size == 128 && c.itlb_kb == 256)
            .collect();
        DesignSpace {
            backing: Backing::Explicit(configs),
        }
    }

    /// Build from an explicit configuration list.
    pub fn from_configs(configs: Vec<CpuConfig>) -> Self {
        DesignSpace {
            backing: Backing::Explicit(configs),
        }
    }

    /// Borrow the configurations as a slice.
    ///
    /// For generated spaces this materializes (and caches) every point on
    /// first call — fine at Table-1 scale, ruinous at [`SpaceSpec::mega`]
    /// scale. Index-driven consumers (the sweep drivers, adaptive DSE)
    /// use [`DesignSpace::config_at`]/[`DesignSpace::iter`] instead.
    pub fn configs(&self) -> &[CpuConfig] {
        match &self.backing {
            Backing::Explicit(configs) => configs,
            Backing::Generated {
                spec, len, cache, ..
            } => cache.get_or_init(|| (0..*len).map(|i| spec.config_at(i)).collect()),
        }
    }

    /// The configuration at lattice/list index `idx` (panics if out of
    /// range, like slice indexing). O(1) and allocation-free for
    /// generated spaces.
    pub fn config_at(&self, idx: usize) -> CpuConfig {
        match &self.backing {
            Backing::Explicit(configs) => configs[idx],
            Backing::Generated { spec, len, .. } => {
                assert!(
                    idx < *len,
                    "design-space index {idx} out of range for a {len}-point space"
                );
                spec.config_at(idx)
            }
        }
    }

    /// Iterate the configurations in index order without materializing
    /// generated spaces.
    pub fn iter(&self) -> impl Iterator<Item = CpuConfig> + '_ {
        (0..self.len()).map(move |i| self.config_at(i))
    }

    /// The index of `config` in this space, or `None` if absent.
    pub fn index_of(&self, config: &CpuConfig) -> Option<usize> {
        match &self.backing {
            Backing::Explicit(configs) => configs.iter().position(|c| c == config),
            Backing::Generated { spec, len, .. } => spec.index_of(config).filter(|&i| i < *len),
        }
    }

    /// The generating spec, if this space is generator-backed.
    pub fn spec(&self) -> Option<&SpaceSpec> {
        match &self.backing {
            Backing::Explicit(_) => None,
            Backing::Generated { spec, .. } => Some(spec.as_ref()),
        }
    }

    /// Content hash identifying the space: the spec hash for generated
    /// spaces, an FNV-1a over the feature encodings for explicit lists.
    /// Consumers (sweep checkpoints) use it to refuse resuming a ledger
    /// against a different space of equal size.
    pub fn content_hash(&self) -> u64 {
        match &self.backing {
            Backing::Generated { hash, .. } => *hash,
            Backing::Explicit(configs) => {
                let mut h = Fnv::new();
                h.write_str("explicit.v1");
                h.write_u64(configs.len() as u64);
                for c in configs {
                    for f in c.features() {
                        h.write_u64(f.to_bits());
                    }
                }
                h.finish()
            }
        }
    }

    /// Whether `configs()` has materialized a generated space (explicit
    /// spaces are trivially materialized). Lazy-enumeration tests assert
    /// this stays `false` across index-driven pipelines.
    pub fn is_materialized(&self) -> bool {
        match &self.backing {
            Backing::Explicit(_) => true,
            Backing::Generated { cache, .. } => cache.get().is_some(),
        }
    }

    /// `k` distinct indices drawn without replacement from a seeded RNG.
    /// Deterministic per (seed, k, space size). For `k` much smaller than
    /// the space, rejection sampling avoids the O(n) shuffle scratch that
    /// would defeat lazy enumeration; near-exhaustive draws fall back to
    /// the partial Fisher–Yates in `linalg::dist`.
    pub fn seeded_pool(&self, seed: u64, k: usize) -> Vec<usize> {
        let n = self.len();
        if k >= n {
            return (0..n).collect();
        }
        let mut rng = linalg::dist::seeded_rng(seed);
        if k.saturating_mul(4) >= n {
            linalg::dist::sample_indices(&mut rng, n, k)
        } else {
            let mut seen = std::collections::HashSet::with_capacity(k);
            let mut out = Vec::with_capacity(k);
            while out.len() < k {
                let i = rand::Rng::random_range(&mut rng, 0..n);
                if seen.insert(i) {
                    out.push(i);
                }
            }
            out
        }
    }

    /// Number of design points.
    pub fn len(&self) -> usize {
        match &self.backing {
            Backing::Explicit(configs) => configs.len(),
            Backing::Generated { len, .. } => *len,
        }
    }

    /// Whether the space is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_has_exactly_4608_points() {
        let space = DesignSpace::table1();
        assert_eq!(space.len(), 4608);
    }

    #[test]
    fn table1_points_are_distinct() {
        let space = DesignSpace::table1();
        let mut set = std::collections::HashSet::new();
        for c in space.configs() {
            assert!(set.insert(*c), "duplicate config {c:?}");
        }
    }

    #[test]
    fn table1_respects_value_domains() {
        for c in DesignSpace::table1().configs() {
            assert!([16, 32, 64].contains(&c.l1d.size_kb));
            assert!([16, 32, 64].contains(&c.l1i.size_kb));
            assert!([32, 64].contains(&c.l1d.line_b));
            assert_eq!(c.l1d.line_b, c.l1i.line_b);
            assert!([256, 1024].contains(&c.l2.size_kb));
            assert_eq!(c.l2.line_b, 128);
            assert!([4, 8].contains(&c.l2.assoc));
            if let Some(l3) = c.l3 {
                assert_eq!((l3.size_kb, l3.line_b, l3.assoc), (8192, 256, 8));
            }
            assert!([4, 8].contains(&c.width));
            assert!([128, 256].contains(&c.ruu_size));
            assert!([64, 128].contains(&c.lsq_size));
            assert_eq!(c.lsq_size * 2, c.ruu_size);
            assert!([256, 1024].contains(&c.itlb_kb));
            assert!([512, 2048].contains(&c.dtlb_kb));
            let expect_fu = if c.width == 4 {
                FuConfig::NARROW
            } else {
                FuConfig::WIDE
            };
            assert_eq!(c.fu, expect_fu);
        }
    }

    #[test]
    fn features_match_names_in_length_and_count_24() {
        let f = CpuConfig::baseline().features();
        let n = CpuConfig::feature_names();
        assert_eq!(f.len(), n.len());
        assert_eq!(f.len(), 24, "Table 1 has 24 parameters");
        assert_eq!(n[CpuConfig::BPRED_FEATURE_INDEX], "bpred");
    }

    #[test]
    fn reduced_space_is_subset() {
        let full: std::collections::HashSet<_> =
            DesignSpace::table1().configs().iter().copied().collect();
        let reduced = DesignSpace::table1_reduced();
        assert_eq!(reduced.len(), 576);
        assert!(reduced.configs().iter().all(|c| full.contains(c)));
    }

    #[test]
    fn cache_geometry_sets() {
        let g = CacheGeometry {
            size_kb: 32,
            line_b: 64,
            assoc: 4,
        };
        // 32KB / 64B = 512 lines / 4 ways = 128 sets.
        assert_eq!(g.num_sets(), 128);
    }

    #[test]
    fn bpred_codes_are_distinct() {
        let codes: std::collections::HashSet<_> =
            BranchPredictorKind::ALL.iter().map(|b| b.code()).collect();
        assert_eq!(codes.len(), 4);
    }

    #[test]
    fn fu_mix_derivation_reproduces_table1_mixes() {
        assert_eq!(SpaceSpec::fu_for_width(4), FuConfig::NARROW);
        assert_eq!(SpaceSpec::fu_for_width(8), FuConfig::WIDE);
        // Degenerate widths still yield at least one unit of each kind.
        assert_eq!(SpaceSpec::fu_for_width(1).imult, 1);
    }

    #[test]
    fn generated_table1_matches_spec_len_and_stays_lazy() {
        let space = DesignSpace::table1();
        assert_eq!(space.len(), 4608);
        assert!(!space.is_materialized(), "table1 starts unmaterialized");
        let c0 = space.config_at(0);
        let last = space.config_at(4607);
        assert!(!space.is_materialized(), "config_at must not materialize");
        // Outermost axis moves slowest, innermost fastest.
        assert_eq!((c0.l1d.size_kb, c0.itlb_kb), (16, 256));
        assert_eq!((last.l1d.size_kb, last.itlb_kb), (64, 1024));
        // configs() materializes and agrees with config_at.
        assert_eq!(space.configs()[0], c0);
        assert_eq!(space.configs()[4607], last);
        assert!(space.is_materialized());
    }

    #[test]
    fn index_of_round_trips_across_unit_boundaries() {
        let space = DesignSpace::table1();
        for idx in [0usize, 1, 63, 64, 65, 2303, 2304, 4606, 4607] {
            let c = space.config_at(idx);
            assert_eq!(space.index_of(&c), Some(idx), "round-trip at {idx}");
        }
        // A config outside the lattice (untied FU mix) has no index.
        let mut alien = space.config_at(0);
        alien.fu.imult += 1;
        assert_eq!(space.index_of(&alien), None);
    }

    #[test]
    fn mega_spec_exceeds_a_million_points_without_materializing() {
        let spec = SpaceSpec::mega();
        let n = spec.try_len().expect("mega spec is valid");
        assert_eq!(n, 2_211_840);
        let space = DesignSpace::try_generate(&spec).expect("mega generates");
        assert_eq!(space.len(), n);
        let c = space.config_at(n - 1);
        assert_eq!(space.index_of(&c), Some(n - 1));
        assert!(!space.is_materialized());
    }

    #[test]
    fn content_hash_distinguishes_spaces_and_is_stable() {
        let t1 = DesignSpace::table1();
        let t1_again = DesignSpace::table1();
        assert_eq!(t1.content_hash(), t1_again.content_hash());
        let smoke = DesignSpace::try_generate(&SpaceSpec::smoke()).expect("smoke");
        let mega = DesignSpace::try_generate(&SpaceSpec::mega()).expect("mega");
        assert_ne!(t1.content_hash(), smoke.content_hash());
        assert_ne!(t1.content_hash(), mega.content_hash());
        // An explicit space with the same points hashes in its own domain.
        let explicit = DesignSpace::from_configs(t1.iter().collect());
        assert_eq!(explicit.len(), t1.len());
        assert_ne!(explicit.content_hash(), t1.content_hash());
        // ...but equal explicit lists agree.
        let explicit2 = DesignSpace::from_configs(t1.iter().collect());
        assert_eq!(explicit.content_hash(), explicit2.content_hash());
    }

    #[test]
    fn invalid_specs_are_rejected_with_invalid_input() {
        let mut empty_axis = SpaceSpec::table1();
        empty_axis.width.clear();
        let e = DesignSpace::try_generate(&empty_axis).expect_err("empty axis");
        assert_eq!(e.kind(), "invalid");
        let mut duplicated = SpaceSpec::table1();
        duplicated.l1d_size_kb.push(16);
        let e = DesignSpace::try_generate(&duplicated).expect_err("dup axis");
        assert_eq!(e.kind(), "invalid");
        let mut zero = SpaceSpec::table1();
        zero.l1_line_b[0] = 0;
        let e = DesignSpace::try_generate(&zero).expect_err("zero line");
        assert_eq!(e.kind(), "invalid");
    }

    #[test]
    fn seeded_pool_is_deterministic_distinct_and_in_range() {
        let space = DesignSpace::try_generate(&SpaceSpec::mega()).expect("mega");
        let a = space.seeded_pool(0xBEEF, 100);
        let b = space.seeded_pool(0xBEEF, 100);
        assert_eq!(a, b, "same seed, same pool");
        assert_ne!(a, space.seeded_pool(0xBEF0, 100), "seed changes pool");
        let mut sorted = a.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 100, "indices are distinct");
        assert!(sorted.iter().all(|&i| i < space.len()));
        assert!(!space.is_materialized(), "pooling must not materialize");
        // Near-exhaustive draws fall back to the Fisher-Yates path.
        let small = DesignSpace::try_generate(&SpaceSpec::smoke()).expect("smoke");
        let all = small.seeded_pool(1, small.len() + 10);
        assert_eq!(all.len(), small.len());
    }

    #[test]
    fn smoke_spec_is_48_points_of_table1_values() {
        let space = DesignSpace::try_generate(&SpaceSpec::smoke()).expect("smoke");
        assert_eq!(space.len(), 48);
        let full: std::collections::HashSet<_> = DesignSpace::table1().iter().collect();
        assert!(space.iter().all(|c| full.contains(&c)));
    }
}
