//! The microarchitecture configuration space of Table 1.
//!
//! Twenty-four parameters describe one simulated processor. The paper's
//! study enumerates 4608 configurations per benchmark; Table 1's free knobs
//! would over-count that, so — as documented in DESIGN.md §5 — this module
//! fixes the canonical tying: L1 line sizes move together, L2 size and
//! associativity move together, the L3's line/associativity follow its
//! presence, RUU and LSQ scale together, the two TLBs scale together, and
//! the functional-unit mix follows the pipeline width. The simulator itself
//! ([`CpuConfig`]) treats all 24 knobs independently; the tying lives only
//! in [`DesignSpace::table1`].

use serde::{Deserialize, Serialize};

/// Branch predictor selection (Table 1: Perfect, Bimodal, 2-level,
/// Combination).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BranchPredictorKind {
    /// Oracle predictor: never mispredicts. Upper bound used by the paper.
    Perfect,
    /// Per-branch 2-bit saturating counters.
    Bimodal,
    /// Two-level adaptive (gshare): global history XOR PC indexes counters.
    TwoLevel,
    /// Tournament of bimodal and two-level with a chooser table.
    Combination,
}

impl BranchPredictorKind {
    /// All four predictor kinds, in Table 1 order.
    pub const ALL: [BranchPredictorKind; 4] = [
        BranchPredictorKind::Perfect,
        BranchPredictorKind::Bimodal,
        BranchPredictorKind::TwoLevel,
        BranchPredictorKind::Combination,
    ];

    /// Stable numeric code used when a model needs a numeric encoding.
    pub fn code(self) -> usize {
        match self {
            BranchPredictorKind::Perfect => 0,
            BranchPredictorKind::Bimodal => 1,
            BranchPredictorKind::TwoLevel => 2,
            BranchPredictorKind::Combination => 3,
        }
    }

    /// Human-readable name matching the paper's Table 1.
    pub fn name(self) -> &'static str {
        match self {
            BranchPredictorKind::Perfect => "Perfect",
            BranchPredictorKind::Bimodal => "Bimodal",
            BranchPredictorKind::TwoLevel => "2-level",
            BranchPredictorKind::Combination => "Combination",
        }
    }
}

/// Geometry of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CacheGeometry {
    /// Total capacity in kilobytes.
    pub size_kb: u32,
    /// Line (block) size in bytes.
    pub line_b: u32,
    /// Set associativity (ways).
    pub assoc: u32,
}

impl CacheGeometry {
    /// Number of sets implied by the geometry.
    pub fn num_sets(&self) -> usize {
        let lines = (self.size_kb as usize * 1024) / self.line_b as usize;
        (lines / self.assoc as usize).max(1)
    }
}

/// Functional unit counts (Table 1: ialu, imult, memport, fpalu, fpmult).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FuConfig {
    /// Integer ALUs.
    pub ialu: u8,
    /// Integer multiply/divide units.
    pub imult: u8,
    /// Cache ports (load/store issue slots per cycle).
    pub memport: u8,
    /// Floating-point adders.
    pub fpalu: u8,
    /// Floating-point multiply/divide units.
    pub fpmult: u8,
}

impl FuConfig {
    /// The 4-wide FU mix from Table 1: 4/2/2/4/2.
    pub const NARROW: FuConfig = FuConfig {
        ialu: 4,
        imult: 2,
        memport: 2,
        fpalu: 4,
        fpmult: 2,
    };
    /// The 8-wide FU mix from Table 1: 8/4/4/8/4.
    pub const WIDE: FuConfig = FuConfig {
        ialu: 8,
        imult: 4,
        memport: 4,
        fpalu: 8,
        fpmult: 4,
    };
}

/// One point in the microprocessor design space — all 24 Table-1 parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CpuConfig {
    /// L1 data cache geometry (16/32/64 KB, 32/64 B lines, 4-way).
    pub l1d: CacheGeometry,
    /// L1 instruction cache geometry (16/32/64 KB, 32/64 B lines, 4-way).
    pub l1i: CacheGeometry,
    /// Unified L2 geometry (256/1024 KB, 128 B lines, 4/8-way).
    pub l2: CacheGeometry,
    /// Optional L3 (None, or 8 MB / 256 B / 8-way).
    pub l3: Option<CacheGeometry>,
    /// Branch predictor kind.
    pub bpred: BranchPredictorKind,
    /// Decode/issue/commit width (4 or 8).
    pub width: u8,
    /// Whether wrong-path instructions are fetched and issued after a
    /// mispredicted branch (SimpleScalar's `-issue:wrongpath`).
    pub issue_wrong_path: bool,
    /// Register Update Unit entries (128 or 256).
    pub ruu_size: u32,
    /// Load/store queue entries (64 or 128).
    pub lsq_size: u32,
    /// Instruction TLB reach in KB (256 or 1024).
    pub itlb_kb: u32,
    /// Data TLB reach in KB (512 or 2048).
    pub dtlb_kb: u32,
    /// Functional unit mix.
    pub fu: FuConfig,
}

impl CpuConfig {
    /// A sane mid-range baseline (32 KB L1s, 256 KB L2, no L3, combining
    /// predictor, 4-wide). Used by examples and as a test fixture.
    pub fn baseline() -> Self {
        CpuConfig {
            l1d: CacheGeometry {
                size_kb: 32,
                line_b: 64,
                assoc: 4,
            },
            l1i: CacheGeometry {
                size_kb: 32,
                line_b: 64,
                assoc: 4,
            },
            l2: CacheGeometry {
                size_kb: 256,
                line_b: 128,
                assoc: 4,
            },
            l3: None,
            bpred: BranchPredictorKind::Combination,
            width: 4,
            issue_wrong_path: false,
            ruu_size: 128,
            lsq_size: 64,
            itlb_kb: 256,
            dtlb_kb: 512,
            fu: FuConfig::NARROW,
        }
    }

    /// Encode the configuration as the model-facing feature vector.
    ///
    /// Layout (`feature_names` gives the labels): all numeric Table-1
    /// parameters plus the branch predictor as a single numeric code. The
    /// ML layer re-encodes the predictor one-hot for neural networks; linear
    /// regression consumes the numeric columns directly, mirroring
    /// Clementine's "numeric inputs only" behaviour (§3.4).
    pub fn features(&self) -> Vec<f64> {
        vec![
            self.l1d.size_kb as f64,
            self.l1d.line_b as f64,
            self.l1d.assoc as f64,
            self.l1i.size_kb as f64,
            self.l1i.line_b as f64,
            self.l1i.assoc as f64,
            self.l2.size_kb as f64,
            self.l2.line_b as f64,
            self.l2.assoc as f64,
            self.l3.map_or(0.0, |c| c.size_kb as f64),
            self.l3.map_or(0.0, |c| c.line_b as f64),
            self.l3.map_or(0.0, |c| c.assoc as f64),
            self.bpred.code() as f64,
            self.width as f64,
            if self.issue_wrong_path { 1.0 } else { 0.0 },
            self.ruu_size as f64,
            self.lsq_size as f64,
            self.itlb_kb as f64,
            self.dtlb_kb as f64,
            self.fu.ialu as f64,
            self.fu.imult as f64,
            self.fu.memport as f64,
            self.fu.fpalu as f64,
            self.fu.fpmult as f64,
        ]
    }

    /// Names for the columns of [`CpuConfig::features`], in order.
    pub fn feature_names() -> Vec<&'static str> {
        vec![
            "l1d_size_kb",
            "l1d_line_b",
            "l1d_assoc",
            "l1i_size_kb",
            "l1i_line_b",
            "l1i_assoc",
            "l2_size_kb",
            "l2_line_b",
            "l2_assoc",
            "l3_size_kb",
            "l3_line_b",
            "l3_assoc",
            "bpred",
            "width",
            "issue_wrong_path",
            "ruu_size",
            "lsq_size",
            "itlb_kb",
            "dtlb_kb",
            "fu_ialu",
            "fu_imult",
            "fu_memport",
            "fu_fpalu",
            "fu_fpmult",
        ]
    }

    /// Index of the branch-predictor column within [`CpuConfig::features`].
    pub const BPRED_FEATURE_INDEX: usize = 12;
}

/// An enumerable design space over [`CpuConfig`]s.
#[derive(Debug, Clone)]
pub struct DesignSpace {
    configs: Vec<CpuConfig>,
}

impl DesignSpace {
    /// The canonical Table-1 lattice: exactly 4608 configurations.
    ///
    /// Free axes: L1D size ×3, L1I size ×3, branch predictor ×4, shared L1
    /// line size ×2, L2 {256 KB/4-way, 1024 KB/8-way} ×2, L3 present ×2,
    /// width (with tied FU mix) ×2, wrong-path issue ×2, window
    /// {RUU 128 + LSQ 64, RUU 256 + LSQ 128} ×2, TLB pair ×2.
    pub fn table1() -> Self {
        let mut configs = Vec::with_capacity(4608);
        for &l1d_size in &[16u32, 32, 64] {
            for &l1i_size in &[16u32, 32, 64] {
                for &bpred in &BranchPredictorKind::ALL {
                    for &line in &[32u32, 64] {
                        for &(l2_size, l2_assoc) in &[(256u32, 4u32), (1024, 8)] {
                            for &l3_present in &[false, true] {
                                for &width in &[4u8, 8] {
                                    for &wrong in &[false, true] {
                                        for &(ruu, lsq) in &[(128u32, 64u32), (256, 128)] {
                                            for &(itlb, dtlb) in &[(256u32, 512u32), (1024, 2048)] {
                                                configs.push(CpuConfig {
                                                    l1d: CacheGeometry {
                                                        size_kb: l1d_size,
                                                        line_b: line,
                                                        assoc: 4,
                                                    },
                                                    l1i: CacheGeometry {
                                                        size_kb: l1i_size,
                                                        line_b: line,
                                                        assoc: 4,
                                                    },
                                                    l2: CacheGeometry {
                                                        size_kb: l2_size,
                                                        line_b: 128,
                                                        assoc: l2_assoc,
                                                    },
                                                    l3: l3_present.then_some(CacheGeometry {
                                                        size_kb: 8192,
                                                        line_b: 256,
                                                        assoc: 8,
                                                    }),
                                                    bpred,
                                                    width,
                                                    issue_wrong_path: wrong,
                                                    ruu_size: ruu,
                                                    lsq_size: lsq,
                                                    itlb_kb: itlb,
                                                    dtlb_kb: dtlb,
                                                    fu: if width == 4 {
                                                        FuConfig::NARROW
                                                    } else {
                                                        FuConfig::WIDE
                                                    },
                                                });
                                            }
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        DesignSpace { configs }
    }

    /// A reduced lattice for tests and quick demos: drops the TLB, window,
    /// and wrong-path axes (576 configurations).
    pub fn table1_reduced() -> Self {
        let full = Self::table1();
        let configs = full
            .configs
            .into_iter()
            .filter(|c| !c.issue_wrong_path && c.ruu_size == 128 && c.itlb_kb == 256)
            .collect();
        DesignSpace { configs }
    }

    /// Build from an explicit configuration list.
    pub fn from_configs(configs: Vec<CpuConfig>) -> Self {
        DesignSpace { configs }
    }

    /// Borrow the configurations.
    pub fn configs(&self) -> &[CpuConfig] {
        &self.configs
    }

    /// Number of design points.
    pub fn len(&self) -> usize {
        self.configs.len()
    }

    /// Whether the space is empty.
    pub fn is_empty(&self) -> bool {
        self.configs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_has_exactly_4608_points() {
        let space = DesignSpace::table1();
        assert_eq!(space.len(), 4608);
    }

    #[test]
    fn table1_points_are_distinct() {
        let space = DesignSpace::table1();
        let mut set = std::collections::HashSet::new();
        for c in space.configs() {
            assert!(set.insert(*c), "duplicate config {c:?}");
        }
    }

    #[test]
    fn table1_respects_value_domains() {
        for c in DesignSpace::table1().configs() {
            assert!([16, 32, 64].contains(&c.l1d.size_kb));
            assert!([16, 32, 64].contains(&c.l1i.size_kb));
            assert!([32, 64].contains(&c.l1d.line_b));
            assert_eq!(c.l1d.line_b, c.l1i.line_b);
            assert!([256, 1024].contains(&c.l2.size_kb));
            assert_eq!(c.l2.line_b, 128);
            assert!([4, 8].contains(&c.l2.assoc));
            if let Some(l3) = c.l3 {
                assert_eq!((l3.size_kb, l3.line_b, l3.assoc), (8192, 256, 8));
            }
            assert!([4, 8].contains(&c.width));
            assert!([128, 256].contains(&c.ruu_size));
            assert!([64, 128].contains(&c.lsq_size));
            assert_eq!(c.lsq_size * 2, c.ruu_size);
            assert!([256, 1024].contains(&c.itlb_kb));
            assert!([512, 2048].contains(&c.dtlb_kb));
            let expect_fu = if c.width == 4 {
                FuConfig::NARROW
            } else {
                FuConfig::WIDE
            };
            assert_eq!(c.fu, expect_fu);
        }
    }

    #[test]
    fn features_match_names_in_length_and_count_24() {
        let f = CpuConfig::baseline().features();
        let n = CpuConfig::feature_names();
        assert_eq!(f.len(), n.len());
        assert_eq!(f.len(), 24, "Table 1 has 24 parameters");
        assert_eq!(n[CpuConfig::BPRED_FEATURE_INDEX], "bpred");
    }

    #[test]
    fn reduced_space_is_subset() {
        let full: std::collections::HashSet<_> =
            DesignSpace::table1().configs().iter().copied().collect();
        let reduced = DesignSpace::table1_reduced();
        assert_eq!(reduced.len(), 576);
        assert!(reduced.configs().iter().all(|c| full.contains(c)));
    }

    #[test]
    fn cache_geometry_sets() {
        let g = CacheGeometry {
            size_kb: 32,
            line_b: 64,
            assoc: 4,
        };
        // 32KB / 64B = 512 lines / 4 ways = 128 sets.
        assert_eq!(g.num_sets(), 128);
    }

    #[test]
    fn bpred_codes_are_distinct() {
        let codes: std::collections::HashSet<_> =
            BranchPredictorKind::ALL.iter().map(|b| b.code()).collect();
        assert_eq!(codes.len(), 4);
    }
}
