//! Property-based tests for the simulator substrate.

use cpusim::bpred;
use cpusim::cache::Cache;
use cpusim::config::{BranchPredictorKind, CacheGeometry, CpuConfig, DesignSpace, SpaceSpec};
use cpusim::core::Core;
use cpusim::tlb::Tlb;
use cpusim::trace::{InstSource, OpClass, ReplaySource, TraceGenerator};
use cpusim::workload::Benchmark;
use proptest::prelude::*;

fn arb_benchmark() -> impl Strategy<Value = Benchmark> {
    prop::sample::select(Benchmark::ALL12.to_vec())
}

fn small_geometry() -> impl Strategy<Value = CacheGeometry> {
    (0u32..3, 0u32..2, 0u32..3).prop_map(|(s, l, a)| CacheGeometry {
        size_kb: [4, 16, 64][s as usize],
        line_b: [32, 64][l as usize],
        assoc: [2, 4, 8][a as usize],
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Cache miss count never exceeds access count, and a repeat of the
    /// same address stream can only raise the hit rate.
    #[test]
    fn cache_counters_are_consistent(
        geom in small_geometry(),
        addrs in prop::collection::vec(0u64..1_000_000, 1..400),
    ) {
        let mut c = Cache::new(geom);
        for &a in &addrs {
            c.access(a);
        }
        prop_assert!(c.misses() <= c.accesses());
        let first_pass_misses = c.misses();
        for &a in &addrs {
            c.access(a);
        }
        // Second pass can add at most as many misses as the first.
        prop_assert!(c.misses() - first_pass_misses <= first_pass_misses);
    }

    /// TLB behaves like a cache of pages: same page twice in a row always
    /// hits on the second access.
    #[test]
    fn tlb_back_to_back_hits(reach in prop::sample::select(vec![256u32, 512, 1024, 2048]),
                             pages in prop::collection::vec(0u64..10_000, 1..100)) {
        let mut t = Tlb::new(reach);
        for &p in &pages {
            let addr = p * 4096;
            t.access(addr);
            prop_assert!(t.access(addr + 123), "immediate repeat must hit");
        }
    }

    /// Branch predictors never report more mispredicts than lookups, and
    /// the perfect predictor reports none.
    #[test]
    fn predictor_stats_are_sane(
        kind in prop::sample::select(BranchPredictorKind::ALL.to_vec()),
        stream in prop::collection::vec((0u32..64, any::<bool>()), 1..500),
    ) {
        let mut p = bpred::build(kind);
        for &(id, taken) in &stream {
            let _ = p.resolve(id, taken);
        }
        let (lookups, mispredicts) = p.stats();
        prop_assert_eq!(lookups, stream.len() as u64);
        prop_assert!(mispredicts <= lookups);
        if kind == BranchPredictorKind::Perfect {
            prop_assert_eq!(mispredicts, 0);
        }
    }

    /// The trace generator is a pure function of (benchmark, seed).
    #[test]
    fn trace_is_deterministic(b in arb_benchmark(), seed in 0u64..1000) {
        let mut g1 = TraceGenerator::for_benchmark(b, seed);
        let mut g2 = TraceGenerator::for_benchmark(b, seed);
        for _ in 0..500 {
            let (a, c) = (g1.next_inst(), g2.next_inst());
            prop_assert_eq!(a.addr, c.addr);
            prop_assert_eq!(a.block, c.block);
            prop_assert_eq!(a.op, c.op);
            prop_assert_eq!(a.taken, c.taken);
        }
    }

    /// Every simulated run commits exactly the requested instructions and
    /// needs at least one cycle per `width` instructions.
    #[test]
    fn core_commits_exactly(b in arb_benchmark(), seed in 0u64..100) {
        let n = 3_000u64;
        let cfg = CpuConfig::baseline();
        let mut gen = TraceGenerator::for_benchmark(b, seed);
        let mut core = Core::new(cfg);
        let s = core.run(&mut gen, n);
        prop_assert_eq!(s.instructions, n);
        prop_assert!(s.cycles >= n / cfg.width as u64);
        prop_assert!(s.mispredicts <= s.branches);
        prop_assert!(s.l2_accesses <= s.l1d_misses + s.l1i_misses);
    }

    /// Replaying a materialized trace commits the same instruction count
    /// and yields identical cycles to a second identical replay.
    #[test]
    fn replay_is_reproducible(b in arb_benchmark(), seed in 0u64..100) {
        let mut gen = TraceGenerator::for_benchmark(b, seed);
        let trace = gen.take_vec(2_000);
        let run = |wp_seed: u64| {
            let mut src = ReplaySource::new(&trace, wp_seed);
            let mut core = Core::new(CpuConfig::baseline());
            core.run(&mut src, 2_000).cycles
        };
        prop_assert_eq!(run(1), run(1));
    }

    /// Arbitrary subsets of the Table-1 lattice keep all config invariants.
    #[test]
    fn design_space_subsets_are_valid(step in 1usize..64, offset in 0usize..64) {
        let full = DesignSpace::table1();
        let sub: Vec<CpuConfig> = full
            .configs()
            .iter()
            .copied()
            .skip(offset)
            .step_by(step)
            .collect();
        for c in &sub {
            prop_assert_eq!(c.features().len(), 24);
            prop_assert!(c.l1d.size_kb >= 16 && c.l1d.size_kb <= 64);
            prop_assert!(c.ruu_size == 2 * c.lsq_size);
        }
    }

    /// `DesignSpace::try_generate` is a pure function of the spec: two
    /// generations agree on the content hash and on every probed index.
    #[test]
    fn generated_space_is_deterministic(idx in 0usize..2_211_840) {
        let a = DesignSpace::try_generate(&SpaceSpec::mega()).expect("mega spec is valid");
        let b = DesignSpace::try_generate(&SpaceSpec::mega()).expect("mega spec is valid");
        prop_assert_eq!(a.content_hash(), b.content_hash());
        prop_assert_eq!(a.config_at(idx), b.config_at(idx));
        prop_assert!(!a.is_materialized(), "probing must stay lazy");
    }

    /// index → config → index round-trips at the edges of arbitrary
    /// work-unit partitions, exactly where the sharded driver hands
    /// configurations between workers.
    #[test]
    fn index_round_trips_across_shard_boundaries(
        unit in 1usize..512,
        k in 0usize..4096,
    ) {
        let space = DesignSpace::try_generate(&SpaceSpec::mega()).expect("mega spec is valid");
        let start = (unit * k) % space.len();
        let end = (start + unit - 1).min(space.len() - 1);
        for idx in [start, end] {
            let c = space.config_at(idx);
            prop_assert_eq!(space.index_of(&c), Some(idx), "round-trip at {}", idx);
        }
    }

    /// Seeded candidate pools are deterministic per seed, distinct, and
    /// in range — on a space far too large to materialize.
    #[test]
    fn seeded_pool_is_deterministic_per_seed(seed in 0u64..1_000_000_000, k in 1usize..200) {
        let space = DesignSpace::try_generate(&SpaceSpec::mega()).expect("mega spec is valid");
        let a = space.seeded_pool(seed, k);
        prop_assert_eq!(&a, &space.seeded_pool(seed, k));
        let mut sorted = a.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), k, "pool indices must be distinct");
        prop_assert!(sorted.iter().all(|&i| i < space.len()));
    }

    /// Memory instructions always carry an address inside the (scaled)
    /// footprint; non-memory instructions carry none.
    #[test]
    fn addresses_only_on_memory_ops(b in arb_benchmark(), seed in 0u64..50) {
        let mut g = TraceGenerator::for_benchmark(b, seed);
        for _ in 0..2_000 {
            let i = g.fetch();
            match i.op {
                OpClass::Load | OpClass::Store => {}
                _ => prop_assert_eq!(i.addr, 0),
            }
        }
    }
}
