//! Quick calibration: range/variation per benchmark over a subsample of the
//! design space.
use cpusim::{sweep_design_space, Benchmark, DesignSpace, SimOptions};
use std::time::Instant;

fn main() {
    let full = DesignSpace::table1();
    let sub = DesignSpace::from_configs(full.configs().iter().copied().step_by(16).collect());
    let opts = SimOptions {
        instructions: 100_000,
        ..Default::default()
    };
    for b in Benchmark::PRESENTED {
        let t0 = Instant::now();
        let res = sweep_design_space(&sub, b, &opts);
        let s = cpusim::runner::summarize_sweep(&res);
        let ipc: Vec<f64> = res
            .iter()
            .map(|r| r.stats.instructions as f64 / r.stats.cycles as f64)
            .collect();
        let mean_ipc = ipc.iter().sum::<f64>() / ipc.len() as f64;
        println!(
            "{:8} range {:.2} variation {:.3} mean_ipc {:.3}  ({} cfgs in {:.1?})",
            b.name(),
            s.range,
            s.variation,
            mean_ipc,
            res.len(),
            t0.elapsed()
        );
    }
}
