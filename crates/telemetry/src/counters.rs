//! Sharded counters and float gauges, correct under rayon-style
//! fork/join parallelism.
//!
//! A [`ShardedCounter`] spreads increments across 16 cache-line-aligned
//! atomic shards indexed by a per-thread hash, so parallel workers rarely
//! contend on the same cache line; [`ShardedCounter::value`] merges the
//! shards. Relaxed ordering is sufficient: values are only read after the
//! parallel region joins (or for a monotonic progress display where exact
//! interleaving does not matter).

use std::sync::atomic::{AtomicU64, Ordering};

const SHARDS: usize = 16;

#[repr(align(64))]
#[derive(Debug, Default)]
struct Shard(AtomicU64);

thread_local! {
    static SHARD_INDEX: usize = {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        std::thread::current().id().hash(&mut h);
        (h.finish() as usize) % SHARDS
    };
}

/// A monotonically-increasing counter safe to bump from many threads.
#[derive(Debug, Default)]
pub(crate) struct ShardedCounter {
    shards: [Shard; SHARDS],
}

impl ShardedCounter {
    /// A zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `delta` from the calling thread.
    pub fn add(&self, delta: u64) {
        let idx = SHARD_INDEX.with(|i| *i);
        self.shards[idx].0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Merge all shards into the current total.
    pub fn value(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }
}

/// A last-write or running-max float gauge stored as `f64` bits.
#[derive(Debug)]
pub(crate) struct Gauge(AtomicU64);

impl Gauge {
    /// A gauge holding `initial`.
    pub fn new(initial: f64) -> Self {
        Gauge(AtomicU64::new(initial.to_bits()))
    }

    /// Overwrite the gauge value.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Raise the gauge to `v` if it is larger than the stored value.
    pub fn max(&self, v: f64) {
        let _ = self
            .0
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |bits| {
                if v > f64::from_bits(bits) {
                    Some(v.to_bits())
                } else {
                    None
                }
            });
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates_and_merges() {
        let c = ShardedCounter::new();
        c.add(3);
        c.add(4);
        assert_eq!(c.value(), 7);
    }

    #[test]
    fn counter_no_lost_updates_across_threads() {
        let c = ShardedCounter::new();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    for _ in 0..10_000 {
                        c.add(1);
                    }
                });
            }
        });
        assert_eq!(c.value(), 80_000);
    }

    #[test]
    fn gauge_set_and_max() {
        let g = Gauge::new(0.0);
        g.set(2.5);
        assert_eq!(g.get(), 2.5);
        g.max(1.0);
        assert_eq!(g.get(), 2.5);
        g.max(9.0);
        assert_eq!(g.get(), 9.0);
    }
}
