//! Coarse progress reporting for long-running stages.
//!
//! [`Progress`] counts completed work units with an atomic and emits a
//! `progress` event only when the run crosses a new decile (or every
//! tick when the total is tiny), so a 10k-config sweep produces ~10
//! events instead of 10k. Safe to tick from parallel workers.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::sink::Event;

/// A thread-safe work-unit counter with throttled reporting.
#[derive(Debug)]
pub struct Progress {
    name: String,
    total: u64,
    done: AtomicU64,
    last_bucket: AtomicU64,
}

impl Progress {
    /// A progress tracker for `total` units of the stage `name`.
    pub fn new(name: impl Into<String>, total: u64) -> Self {
        Progress {
            name: name.into(),
            total,
            done: AtomicU64::new(0),
            last_bucket: AtomicU64::new(0),
        }
    }

    /// Record one completed unit.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Record `n` completed units.
    pub fn add(&self, n: u64) {
        let done = self.done.fetch_add(n, Ordering::Relaxed) + n;
        if !crate::enabled() {
            return;
        }
        // Report at most once per decile; for totals under 10 every tick
        // is its own decile so nothing is lost.
        let bucket = done
            .saturating_mul(10)
            .checked_div(self.total)
            .unwrap_or(done);
        if self.last_bucket.fetch_max(bucket, Ordering::Relaxed) < bucket {
            crate::emit(&Event::Progress {
                name: &self.name,
                done: done.min(self.total.max(done)),
                total: self.total,
            });
        }
    }

    /// Units completed so far.
    pub fn done(&self) -> u64 {
        self.done.load(Ordering::Relaxed)
    }

    /// Total units expected (0 when unknown).
    pub fn total(&self) -> u64 {
        self.total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_ticks_across_threads() {
        let p = Progress::new("stage", 4_000);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..1_000 {
                        p.inc();
                    }
                });
            }
        });
        assert_eq!(p.done(), 4_000);
        assert_eq!(p.total(), 4_000);
    }
}
