//! Streaming latency histograms with a fixed log-bucketed layout.
//!
//! A [`Histogram`] records `u64` observations (nanoseconds by
//! convention) into HDR-style buckets: values below 64 land in
//! unit-width buckets (exact), and every power-of-two range above that
//! is split into [`SUB_BUCKETS`] sub-buckets, bounding the relative
//! quantization error of any quantile at `1/SUB_BUCKETS` ≈ 3.1 %. The
//! layout is *fixed* — it does not depend on the data — so two
//! histograms filled on different shards merge by bucket-count
//! addition, and `merge-then-quantile` equals
//! `observe-everything-then-quantile` for every interleaving of shards
//! (property-tested in `tests/hist_prop.rs`).
//!
//! Memory is bounded at [`NUM_BUCKETS`] `u64` slots (~15 KB) no matter
//! how many values are observed, which is what lets a long-lived
//! serving daemon keep per-model latency distributions forever where a
//! sort-the-`Vec` percentile cannot.
//!
//! Two flavors share the layout:
//!
//! * [`Histogram`] — plain counts, for single-owner accumulation and
//!   for merging worker-local results.
//! * [`AtomicHistogram`] — relaxed atomic counts, used by the telemetry
//!   registry so rayon-parallel callers can observe concurrently; a
//!   [`AtomicHistogram::snapshot`] materializes a plain [`Histogram`].
//!
//! Quantiles return the *upper bound* of the bucket holding the ranked
//! observation (clamped into the exact recorded `[min, max]`), so a
//! reported p99 never understates the true p99 by more than the bucket
//! width.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use crate::json::{JsonObject, Value};

/// log2 of the sub-bucket count: 32 sub-buckets per power of two.
pub const SUB_BUCKET_BITS: u32 = 5;
/// Sub-buckets per power-of-two range; bounds relative error at 1/32.
pub const SUB_BUCKETS: u64 = 1 << SUB_BUCKET_BITS;
/// Total bucket count covering the full `u64` range.
///
/// Indices `0..2*SUB_BUCKETS` are unit-width (exact); each further
/// power of two contributes `SUB_BUCKETS` buckets, and the top value
/// bit is 63, so: `(63 - SUB_BUCKET_BITS) * SUB_BUCKETS + 2*SUB_BUCKETS`.
pub const NUM_BUCKETS: usize = ((63 - SUB_BUCKET_BITS as usize) + 2) * SUB_BUCKETS as usize;

/// Convert a [`Duration`] to whole nanoseconds, saturating at
/// `u64::MAX` (~585 years) instead of truncating the `u128`.
#[inline]
pub(crate) fn saturating_ns(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

/// Bucket index for a value. Deterministic, data-independent, monotone.
#[inline]
fn bucket_index(v: u64) -> usize {
    if v < 2 * SUB_BUCKETS {
        // Unit-width region: exact.
        return v as usize;
    }
    // Position of the most significant set bit (≥ SUB_BUCKET_BITS + 1).
    let msb = 63 - v.leading_zeros();
    let shift = msb - SUB_BUCKET_BITS;
    // `top` is `v` reduced to SUB_BUCKET_BITS+1 significant bits, in
    // [SUB_BUCKETS, 2*SUB_BUCKETS).
    let top = v >> shift;
    ((msb - SUB_BUCKET_BITS) as u64 * SUB_BUCKETS + top) as usize
}

/// Largest value that maps to bucket `idx` (the quantile representative).
fn bucket_upper_bound(idx: usize) -> u64 {
    let idx = idx as u64;
    if idx < 2 * SUB_BUCKETS {
        return idx;
    }
    let q = idx / SUB_BUCKETS; // ≥ 2
    let r = idx % SUB_BUCKETS;
    let shift = (q - 1) as u32;
    // Inverse of `bucket_index`: top = SUB_BUCKETS + r, value range is
    // [top << shift, ((top + 1) << shift) - 1]. The very top bucket's
    // bound is 2^64, one past u64::MAX — widen, then saturate.
    let ub = (u128::from(SUB_BUCKETS + r + 1) << shift) - 1;
    u64::try_from(ub).unwrap_or(u64::MAX)
}

/// A mergeable fixed-layout streaming histogram. See the module docs.
#[derive(Clone, PartialEq, Eq)]
pub struct Histogram {
    counts: Box<[u64; NUM_BUCKETS]>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count)
            .field("min", &self.min())
            .field("p50", &self.quantile(0.50))
            .field("p99", &self.quantile(0.99))
            .field("max", &self.max())
            .finish()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            counts: Box::new([0; NUM_BUCKETS]),
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Record one value.
    pub fn observe(&mut self, v: u64) {
        self.counts[bucket_index(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Record a duration as saturating whole nanoseconds.
    pub fn observe_ns(&mut self, d: Duration) {
        self.observe(saturating_ns(d));
    }

    /// Fold `other` into `self`. Bucket-count addition commutes, so any
    /// merge order over any sharding of the observations yields the
    /// same histogram.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Saturating sum of all observations.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of the recorded values (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The value at quantile `q` in `[0, 1]`: the upper bound of the
    /// bucket containing the observation of rank `ceil(q · count)`,
    /// clamped into the exact `[min, max]`. Returns 0 when empty;
    /// non-finite or out-of-range `q` is clamped into `[0, 1]`.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = if q.is_finite() {
            q.clamp(0.0, 1.0)
        } else {
            1.0
        };
        // Rank of the target observation, 1-based. count < 2^53 long
        // before the f64 product loses integer precision.
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_upper_bound(idx).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Sparse `(bucket index, count)` pairs for non-empty buckets.
    pub(crate) fn nonzero_buckets(&self) -> Vec<(usize, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (i, c))
            .collect()
    }

    /// Render the manifest `histogram` record for this histogram.
    ///
    /// The record carries the summary fields every consumer wants
    /// (`count`, `sum`, `min`, `max`, `p50/p90/p95/p99`) plus the
    /// sparse bucket array, from which [`Histogram::from_manifest`]
    /// reconstructs the histogram exactly.
    pub fn to_manifest_record(&self, name: &str) -> String {
        let mut buckets = String::from("[");
        for (i, (idx, c)) in self.nonzero_buckets().iter().enumerate() {
            if i > 0 {
                buckets.push(',');
            }
            buckets.push_str(&format!("[{idx},{c}]"));
        }
        buckets.push(']');
        JsonObject::new()
            .str("type", "histogram")
            .str("name", name)
            .uint("count", self.count)
            .uint("sum", self.sum)
            .uint("min", self.min())
            .uint("max", self.max())
            .uint("p50", self.quantile(0.50))
            .uint("p90", self.quantile(0.90))
            .uint("p95", self.quantile(0.95))
            .uint("p99", self.quantile(0.99))
            .raw("buckets", &buckets)
            .finish()
    }

    /// Rebuild a histogram from a parsed manifest `histogram` record
    /// (the [`Value`] for one line). The bucket array is authoritative
    /// for counts; `sum`/`min`/`max` restore the exact extremes.
    pub fn from_manifest(v: &Value) -> Result<(String, Histogram), String> {
        if v.get("type").and_then(Value::as_str) != Some("histogram") {
            return Err("not a histogram record".to_string());
        }
        let name = v
            .get("name")
            .and_then(Value::as_str)
            .ok_or("histogram record missing 'name'")?
            .to_string();
        let mut h = Histogram::new();
        let buckets = match v.get("buckets") {
            Some(Value::Arr(items)) => items,
            _ => return Err(format!("histogram '{name}' missing 'buckets' array")),
        };
        for item in buckets {
            let pair = match item {
                Value::Arr(p) if p.len() == 2 => p,
                _ => return Err(format!("histogram '{name}': malformed bucket pair")),
            };
            let idx = pair[0]
                .as_u64()
                .ok_or_else(|| format!("histogram '{name}': bucket index not a u64"))?;
            let c = pair[1]
                .as_u64()
                .ok_or_else(|| format!("histogram '{name}': bucket count not a u64"))?;
            let idx = usize::try_from(idx)
                .ok()
                .filter(|&i| i < NUM_BUCKETS)
                .ok_or_else(|| format!("histogram '{name}': bucket index {idx} out of range"))?;
            h.counts[idx] += c;
            h.count += c;
        }
        let field = |k: &str| {
            v.get(k)
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("histogram '{name}' missing u64 field '{k}'"))
        };
        if field("count")? != h.count {
            return Err(format!(
                "histogram '{name}': count field disagrees with bucket total"
            ));
        }
        h.sum = field("sum")?;
        h.max = field("max")?;
        h.min = if h.count == 0 {
            u64::MAX
        } else {
            field("min")?
        };
        Ok((name, h))
    }
}

/// The registry-resident histogram: identical layout, relaxed-atomic
/// counts so rayon workers observe without locking. Addition commutes,
/// so a post-join [`AtomicHistogram::snapshot`] is deterministic for a
/// deterministic set of observations regardless of thread interleaving.
pub struct AtomicHistogram {
    counts: Box<[AtomicU64; NUM_BUCKETS]>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for AtomicHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl AtomicHistogram {
    /// An empty atomic histogram.
    pub fn new() -> AtomicHistogram {
        AtomicHistogram {
            counts: Box::new([0u64; NUM_BUCKETS].map(AtomicU64::new)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Record one value from any thread.
    pub fn observe(&self, v: u64) {
        self.counts[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Record a duration as saturating whole nanoseconds.
    pub fn observe_ns(&self, d: Duration) {
        self.observe(saturating_ns(d));
    }

    /// Fold an already-filled plain histogram in (worker-local results).
    pub(crate) fn merge_from(&self, other: &Histogram) {
        for (slot, &c) in self.counts.iter().zip(other.counts.iter()) {
            if c > 0 {
                slot.fetch_add(c, Ordering::Relaxed);
            }
        }
        self.count.fetch_add(other.count, Ordering::Relaxed);
        self.sum.fetch_add(other.sum, Ordering::Relaxed);
        self.min.fetch_min(other.min, Ordering::Relaxed);
        self.max.fetch_max(other.max, Ordering::Relaxed);
    }

    /// Materialize a plain [`Histogram`]. Call after parallel regions
    /// join for an exact snapshot.
    pub(crate) fn snapshot(&self) -> Histogram {
        let mut h = Histogram::new();
        for (slot, src) in h.counts.iter_mut().zip(self.counts.iter()) {
            *slot = src.load(Ordering::Relaxed);
        }
        h.count = self.count.load(Ordering::Relaxed);
        h.sum = self.sum.load(Ordering::Relaxed);
        h.min = self.min.load(Ordering::Relaxed);
        h.max = self.max.load(Ordering::Relaxed);
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    #[test]
    fn small_values_are_exact() {
        let mut h = Histogram::new();
        for v in 0..64u64 {
            h.observe(v);
        }
        assert_eq!(h.count(), 64);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 63);
        // Every unit bucket holds exactly its own value.
        assert_eq!(h.quantile(0.0), 0);
        assert_eq!(h.quantile(1.0), 63);
        assert_eq!(h.quantile(0.5), 31);
    }

    #[test]
    fn bucket_index_is_monotone_and_in_range() {
        let mut prev = 0usize;
        let mut v = 0u64;
        while v < u64::MAX / 2 {
            let idx = bucket_index(v);
            assert!(idx < NUM_BUCKETS, "v={v} idx={idx}");
            assert!(idx >= prev, "v={v}");
            assert!(
                bucket_upper_bound(idx) >= v,
                "v={v} idx={idx} ub={}",
                bucket_upper_bound(idx)
            );
            prev = idx;
            v = v * 2 + 1;
        }
        assert!(bucket_index(u64::MAX) < NUM_BUCKETS);
    }

    #[test]
    fn upper_bound_inverts_index() {
        for idx in 0..NUM_BUCKETS {
            let ub = bucket_upper_bound(idx);
            assert_eq!(bucket_index(ub), idx, "idx={idx} ub={ub}");
            if ub < u64::MAX {
                assert!(bucket_index(ub + 1) > idx, "idx={idx}");
            }
        }
    }

    #[test]
    fn quantile_error_is_bounded() {
        let mut h = Histogram::new();
        // 1..=10_000 µs in ns-scale values.
        for v in 1..=10_000u64 {
            h.observe(v * 1_000);
        }
        for (q, exact) in [(0.5, 5_000_000u64), (0.95, 9_500_000), (0.99, 9_900_000)] {
            let got = h.quantile(q);
            assert!(got >= exact, "q={q}: {got} < exact {exact}");
            let err = (got - exact) as f64 / exact as f64;
            assert!(err <= 1.0 / SUB_BUCKETS as f64, "q={q}: err {err}");
        }
        assert_eq!(h.quantile(1.0), 10_000_000);
    }

    #[test]
    fn merge_equals_single_stream() {
        let vals: Vec<u64> = (0..500u64).map(|i| i * i * 37 + 11).collect();
        let mut whole = Histogram::new();
        for &v in &vals {
            whole.observe(v);
        }
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for (i, &v) in vals.iter().enumerate() {
            if i % 3 == 0 {
                a.observe(v)
            } else {
                b.observe(v)
            }
        }
        let mut merged = Histogram::new();
        merged.merge(&b);
        merged.merge(&a);
        assert_eq!(merged, whole);
        assert_eq!(merged.quantile(0.99), whole.quantile(0.99));
    }

    #[test]
    fn empty_histogram_is_well_defined() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn atomic_histogram_matches_plain_under_threads() {
        let ah = AtomicHistogram::new();
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let ah = &ah;
                scope.spawn(move || {
                    for i in 0..1000u64 {
                        ah.observe(t * 1_000_000 + i * 997);
                    }
                });
            }
        });
        let mut plain = Histogram::new();
        for t in 0..4u64 {
            for i in 0..1000u64 {
                plain.observe(t * 1_000_000 + i * 997);
            }
        }
        assert_eq!(ah.snapshot(), plain);
    }

    #[test]
    fn manifest_record_round_trips() {
        // u64::MAX survives the f64-based JSON parser by saturation;
        // general u64 exactness holds only below 2^53 (see hist_prop).
        let mut h = Histogram::new();
        for v in [0u64, 5, 63, 64, 1_000, 123_456_789, u64::MAX] {
            h.observe(v);
        }
        let line = h.to_manifest_record("serve/latency_ns");
        let v = parse(&line).expect("parses");
        let (name, back) = Histogram::from_manifest(&v).expect("decodes");
        assert_eq!(name, "serve/latency_ns");
        assert_eq!(back, h);
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(back.quantile(q), h.quantile(q));
        }
    }

    #[test]
    fn from_manifest_rejects_malformed_records() {
        let bad = [
            r#"{"type":"gauge","name":"x","value":1}"#,
            r#"{"type":"histogram","count":1,"sum":1,"min":1,"max":1,"buckets":[[1,1]]}"#,
            r#"{"type":"histogram","name":"x","count":1,"sum":1,"min":1,"max":1,"buckets":[[999999,1]]}"#,
            r#"{"type":"histogram","name":"x","count":2,"sum":1,"min":1,"max":1,"buckets":[[1,1]]}"#,
            r#"{"type":"histogram","name":"x","count":1,"sum":1,"min":1,"max":1,"buckets":[1]}"#,
        ];
        for text in bad {
            let v = parse(text).expect("valid json");
            assert!(Histogram::from_manifest(&v).is_err(), "{text}");
        }
    }

    #[test]
    fn saturating_ns_clamps() {
        assert_eq!(saturating_ns(Duration::from_nanos(1234)), 1234);
        assert_eq!(saturating_ns(Duration::MAX), u64::MAX);
    }

    #[test]
    fn quantile_handles_degenerate_q() {
        let mut h = Histogram::new();
        h.observe(100);
        assert_eq!(h.quantile(f64::NAN), 100);
        assert_eq!(h.quantile(-1.0), 100);
        assert_eq!(h.quantile(2.0), 100);
    }
}
