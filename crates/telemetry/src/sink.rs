//! Pluggable output sinks for telemetry events.
//!
//! Two sinks ship with the crate: [`ConsoleSink`] prints human-readable
//! lines to stderr (verbosity from the `PERFPREDICT_LOG` env var or the
//! CLI `--trace` flag), and [`JsonlSink`] appends one JSON object per
//! line to a run-manifest file that `telemetry::json::parse` (and any
//! external tool) can read back. Sinks receive every event while a run is
//! installed plus a final [`RunSummary`] when the run finishes.

use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::Mutex;
use std::time::{Duration, SystemTime};

use crate::hist::Histogram;
use crate::json::JsonObject;
use crate::profile::ProfileEntry;

/// Console verbosity, parsed from `PERFPREDICT_LOG`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ConsoleLevel {
    /// No console output (default).
    Off,
    /// Top-level spans, progress, and the run summary.
    Info,
    /// Every span, point, and progress tick.
    Debug,
}

impl ConsoleLevel {
    /// Read the level from the `PERFPREDICT_LOG` environment variable
    /// (`off` / `info` / `debug`, case-insensitive; unset means off).
    pub(crate) fn from_env() -> Self {
        match std::env::var("PERFPREDICT_LOG") {
            Ok(v) => match v.to_ascii_lowercase().as_str() {
                "info" | "1" => ConsoleLevel::Info,
                "debug" | "trace" | "2" => ConsoleLevel::Debug,
                _ => ConsoleLevel::Off,
            },
            Err(_) => ConsoleLevel::Off,
        }
    }
}

/// One telemetry occurrence, borrowed from the emitting site.
#[derive(Debug)]
pub enum Event<'a> {
    /// A timed span closed.
    SpanClose {
        /// Slash-joined ancestry, e.g. `sweep/simulate`.
        path: &'a str,
        /// Nesting depth (1 = top level).
        depth: usize,
        /// Span wall time in nanoseconds.
        wall_ns: u64,
        /// Key/value attributes captured at span entry.
        attrs: &'a [(&'static str, String)],
    },
    /// An instantaneous named observation (epoch loss, prune decision…).
    Point {
        /// Event name, e.g. `prune/accept`.
        name: &'a str,
        /// Key/value attributes.
        attrs: &'a [(&'static str, String)],
    },
    /// A progress tick on a long-running stage.
    Progress {
        /// Stage name.
        name: &'a str,
        /// Units completed so far.
        done: u64,
        /// Total units (0 when unknown).
        total: u64,
    },
}

/// Final rollup handed to sinks (and returned to the caller) at run end.
#[derive(Debug, Clone)]
pub struct RunSummary {
    /// Run label (the CLI subcommand or binary name).
    pub label: String,
    /// Total installed wall time.
    pub wall: Duration,
    /// Counter totals, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Gauge values, sorted by name.
    pub gauges: Vec<(String, f64)>,
    /// Streaming-histogram snapshots, sorted by name.
    pub hists: Vec<(String, Histogram)>,
    /// Span-profile rows (self time descending); empty unless the run
    /// was installed with profiling enabled.
    pub profile: Vec<ProfileEntry>,
}

/// Render a nanosecond quantity at a human scale (`420ns`, `3.1µs`,
/// `2.45ms`, `1.20s`).
pub(crate) fn fmt_ns(ns: u64) -> String {
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.1}µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else {
        format!("{:.2}s", ns as f64 / 1e9)
    }
}

impl RunSummary {
    /// Compact single-line rendering for the end of repro binaries.
    /// Histograms report the tail the daemon SLOs care about:
    /// `name{n=.. p50=.. p95=.. p99=..}`.
    pub fn one_line(&self) -> String {
        let mut line = format!("[{}] done in {:.2}s", self.label, self.wall.as_secs_f64());
        if !self.counters.is_empty() {
            let kv: Vec<String> = self
                .counters
                .iter()
                .map(|(k, v)| format!("{k}={v}"))
                .collect();
            line.push_str(&format!(" | {}", kv.join(" ")));
        }
        if !self.gauges.is_empty() {
            let kv: Vec<String> = self
                .gauges
                .iter()
                .map(|(k, v)| format!("{k}={v:.4}"))
                .collect();
            line.push_str(&format!(" | {}", kv.join(" ")));
        }
        if !self.hists.is_empty() {
            let kv: Vec<String> = self
                .hists
                .iter()
                .map(|(k, h)| {
                    format!(
                        "{k}{{n={} p50={} p95={} p99={}}}",
                        h.count(),
                        fmt_ns(h.quantile(0.50)),
                        fmt_ns(h.quantile(0.95)),
                        fmt_ns(h.quantile(0.99)),
                    )
                })
                .collect();
            line.push_str(&format!(" | {}", kv.join(" ")));
        }
        line
    }
}

/// Receiver for telemetry events during a run.
pub(crate) trait Sink: Send + Sync {
    /// Record one event; `t_ms` is milliseconds since run start.
    fn record(&self, t_ms: f64, event: &Event<'_>);
    /// The run finished; flush any buffered output.
    fn run_end(&self, summary: &RunSummary);
}

/// Human-readable stderr sink.
#[derive(Debug)]
pub(crate) struct ConsoleSink {
    level: ConsoleLevel,
}

impl ConsoleSink {
    /// A console sink at the given verbosity.
    pub fn new(level: ConsoleLevel) -> Self {
        ConsoleSink { level }
    }
}

fn fmt_attrs(attrs: &[(&'static str, String)]) -> String {
    if attrs.is_empty() {
        return String::new();
    }
    let kv: Vec<String> = attrs.iter().map(|(k, v)| format!("{k}={v}")).collect();
    format!(" {}", kv.join(" "))
}

impl Sink for ConsoleSink {
    fn record(&self, t_ms: f64, event: &Event<'_>) {
        match event {
            Event::SpanClose {
                path,
                depth,
                wall_ns,
                attrs,
            } => {
                if self.level >= ConsoleLevel::Debug
                    || (self.level >= ConsoleLevel::Info && *depth <= 1)
                {
                    eprintln!(
                        "[perfpredict +{t_ms:9.1}ms] span  {path} {:.2}ms{}",
                        *wall_ns as f64 / 1e6,
                        fmt_attrs(attrs),
                    );
                }
            }
            Event::Point { name, attrs } => {
                if self.level >= ConsoleLevel::Debug {
                    eprintln!(
                        "[perfpredict +{t_ms:9.1}ms] point {name}{}",
                        fmt_attrs(attrs)
                    );
                }
            }
            Event::Progress { name, done, total } => {
                if self.level >= ConsoleLevel::Info {
                    if *total > 0 {
                        eprintln!(
                            "[perfpredict +{t_ms:9.1}ms] {name}: {done}/{total} ({:.0}%)",
                            *done as f64 / *total as f64 * 100.0
                        );
                    } else {
                        eprintln!("[perfpredict +{t_ms:9.1}ms] {name}: {done}");
                    }
                }
            }
        }
    }

    fn run_end(&self, summary: &RunSummary) {
        if self.level >= ConsoleLevel::Info {
            eprintln!("[perfpredict] {}", summary.one_line());
        }
    }
}

/// JSON-lines run-manifest sink.
///
/// Line types (`"type"` field): `meta`, `span`, `point`, `progress`,
/// `counter`, `gauge`, `histogram`, `profile`, `summary`. All
/// timestamps are milliseconds since run start except the meta line's
/// `unix_ms`.
pub(crate) struct JsonlSink {
    out: Mutex<BufWriter<File>>,
}

impl JsonlSink {
    /// Create (truncate) the manifest at `path` and write the meta line.
    pub fn create(path: &Path, label: &str, meta: &[(String, String)]) -> io::Result<Self> {
        let file = File::create(path)?;
        let mut obj = JsonObject::new()
            .str("type", "meta")
            .str("schema", "perfpredict.telemetry/v1")
            .str("label", label)
            .uint(
                "unix_ms",
                SystemTime::now()
                    .duration_since(SystemTime::UNIX_EPOCH)
                    .map(|d| u64::try_from(d.as_millis()).unwrap_or(u64::MAX))
                    .unwrap_or(0),
            );
        for (k, v) in meta {
            // Numeric-looking metadata (seeds, rates) stays numeric.
            obj = match v.parse::<f64>() {
                Ok(x) if x.is_finite() => obj.num(k, x),
                _ => obj.str(k, v),
            };
        }
        let sink = JsonlSink {
            out: Mutex::new(BufWriter::new(file)),
        };
        sink.write_line(&obj.finish());
        Ok(sink)
    }

    fn write_line(&self, line: &str) {
        let mut out = self.out.lock().unwrap_or_else(|e| e.into_inner());
        let _ = writeln!(out, "{line}");
    }
}

fn attrs_json(attrs: &[(&'static str, String)]) -> String {
    let mut obj = JsonObject::new();
    for (k, v) in attrs {
        // Numeric-looking attribute values stay numbers in the manifest.
        obj = match v.parse::<f64>() {
            Ok(x) if x.is_finite() => obj.num(k, x),
            _ => obj.str(k, v),
        };
    }
    obj.finish()
}

impl Sink for JsonlSink {
    fn record(&self, t_ms: f64, event: &Event<'_>) {
        let line = match event {
            Event::SpanClose {
                path,
                depth,
                wall_ns,
                attrs,
            } => JsonObject::new()
                .str("type", "span")
                .num("t_ms", t_ms)
                .str("path", path)
                .uint("depth", *depth as u64)
                .num("wall_ms", *wall_ns as f64 / 1e6)
                .raw("attrs", &attrs_json(attrs))
                .finish(),
            Event::Point { name, attrs } => JsonObject::new()
                .str("type", "point")
                .num("t_ms", t_ms)
                .str("name", name)
                .raw("attrs", &attrs_json(attrs))
                .finish(),
            Event::Progress { name, done, total } => JsonObject::new()
                .str("type", "progress")
                .num("t_ms", t_ms)
                .str("name", name)
                .uint("done", *done)
                .uint("total", *total)
                .finish(),
        };
        self.write_line(&line);
    }

    fn run_end(&self, summary: &RunSummary) {
        for (name, value) in &summary.counters {
            self.write_line(
                &JsonObject::new()
                    .str("type", "counter")
                    .str("name", name)
                    .uint("value", *value)
                    .finish(),
            );
        }
        for (name, value) in &summary.gauges {
            self.write_line(
                &JsonObject::new()
                    .str("type", "gauge")
                    .str("name", name)
                    .num("value", *value)
                    .finish(),
            );
        }
        for (name, h) in &summary.hists {
            self.write_line(&h.to_manifest_record(name));
        }
        for entry in &summary.profile {
            self.write_line(&entry.to_manifest_record());
        }
        self.write_line(
            &JsonObject::new()
                .str("type", "summary")
                .str("label", &summary.label)
                .num("wall_ms", summary.wall.as_secs_f64() * 1e3)
                .finish(),
        );
        let mut out = self.out.lock().unwrap_or_else(|e| e.into_inner());
        let _ = out.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    #[test]
    fn console_level_ordering() {
        assert!(ConsoleLevel::Debug > ConsoleLevel::Info);
        assert!(ConsoleLevel::Info > ConsoleLevel::Off);
    }

    #[test]
    fn jsonl_sink_writes_parseable_lines() {
        let path = std::env::temp_dir().join("telemetry_sink_unit_test.jsonl");
        let sink = JsonlSink::create(&path, "unit", &[("seed".to_string(), "42".to_string())])
            .expect("create manifest");
        sink.record(
            1.5,
            &Event::SpanClose {
                path: "a/b",
                depth: 2,
                wall_ns: 2_000_000,
                attrs: &[("model", "LR-B".to_string()), ("rate", "2".to_string())],
            },
        );
        sink.record(
            2.0,
            &Event::Progress {
                name: "sweep",
                done: 3,
                total: 10,
            },
        );
        let mut lat = Histogram::new();
        for v in [1_000u64, 2_000, 4_000] {
            lat.observe(v);
        }
        sink.run_end(&RunSummary {
            label: "unit".into(),
            wall: Duration::from_millis(250),
            counters: vec![("sim/windows".into(), 7)],
            gauges: vec![("loss".into(), 0.5)],
            hists: vec![("serve/latency_ns".into(), lat.clone())],
            profile: vec![ProfileEntry {
                path: "a/b".into(),
                calls: 2,
                total_ns: 2_000_000,
                self_ns: 1_500_000,
            }],
        });
        drop(sink);

        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<_> = text.lines().collect();
        assert_eq!(lines.len(), 8);
        let types: Vec<String> = lines
            .iter()
            .map(|l| {
                parse(l)
                    .expect("line parses")
                    .get("type")
                    .unwrap()
                    .as_str()
                    .unwrap()
                    .to_string()
            })
            .collect();
        assert_eq!(
            types,
            [
                "meta",
                "span",
                "progress",
                "counter",
                "gauge",
                "histogram",
                "profile",
                "summary"
            ]
        );
        // The histogram record round-trips through the parser.
        let (hname, hback) =
            Histogram::from_manifest(&parse(lines[5]).unwrap()).expect("histogram decodes");
        assert_eq!(hname, "serve/latency_ns");
        assert_eq!(hback, lat);
        let span = parse(lines[1]).unwrap();
        assert_eq!(span.get("path").unwrap().as_str(), Some("a/b"));
        assert_eq!(
            span.get("attrs").unwrap().get("rate").unwrap().as_u64(),
            Some(2)
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn summary_one_line_mentions_counters() {
        let s = RunSummary {
            label: "repro_fig2".into(),
            wall: Duration::from_secs(3),
            counters: vec![("train/epochs".into(), 120)],
            gauges: vec![],
            hists: vec![],
            profile: vec![],
        };
        let line = s.one_line();
        assert!(line.contains("repro_fig2"));
        assert!(line.contains("train/epochs=120"));
    }

    #[test]
    fn summary_one_line_includes_histogram_tail() {
        let mut h = Histogram::new();
        for v in 1..=100u64 {
            h.observe(v * 1_000_000); // 1..=100 ms
        }
        let s = RunSummary {
            label: "serve".into(),
            wall: Duration::from_secs(1),
            counters: vec![],
            gauges: vec![],
            hists: vec![("serve/latency_ns".into(), h)],
            profile: vec![],
        };
        let line = s.one_line();
        assert!(line.contains("serve/latency_ns{n=100 p50="), "{line}");
        assert!(line.contains("p99="), "{line}");
    }

    #[test]
    fn fmt_ns_picks_human_scales() {
        assert_eq!(fmt_ns(420), "420ns");
        assert_eq!(fmt_ns(3_100), "3.1µs");
        assert_eq!(fmt_ns(2_450_000), "2.45ms");
        assert_eq!(fmt_ns(1_200_000_000), "1.20s");
    }
}
