//! Hierarchical timed spans.
//!
//! A [`SpanGuard`] measures the wall time between its creation and drop
//! and emits a `span` event with its slash-joined ancestry path. Nesting
//! is tracked per thread with a thread-local name stack, so concurrent
//! rayon workers each get their own hierarchy. Guards are scope-bound:
//! create them with the [`span!`](crate::span) macro, bind to a local
//! (`let _span = span!(...)`), and let them drop in LIFO order.

use std::cell::RefCell;
use std::time::Instant;

use crate::sink::Event;

thread_local! {
    static SPAN_STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

struct ActiveSpan {
    path: String,
    depth: usize,
    start: Instant,
    attrs: Vec<(&'static str, String)>,
}

/// RAII guard for one timed span; see the module docs.
pub struct SpanGuard {
    active: Option<ActiveSpan>,
}

impl SpanGuard {
    /// Open a span named `name` under the calling thread's current span.
    ///
    /// Prefer the [`span!`](crate::span) macro, which skips attribute
    /// construction entirely when telemetry is not installed.
    pub fn enter(name: &'static str, attrs: Vec<(&'static str, String)>) -> Self {
        let (path, depth) = SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            stack.push(name);
            (stack.join("/"), stack.len())
        });
        SpanGuard {
            active: Some(ActiveSpan {
                path,
                depth,
                start: Instant::now(),
                attrs,
            }),
        }
    }

    /// A no-op guard used when telemetry is disabled.
    pub fn disabled() -> Self {
        SpanGuard { active: None }
    }

    /// Wall time elapsed so far (zero for disabled guards).
    pub fn elapsed(&self) -> std::time::Duration {
        self.active
            .as_ref()
            .map(|a| a.start.elapsed())
            .unwrap_or_default()
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(active) = self.active.take() else {
            return;
        };
        let wall_ns = crate::hist::saturating_ns(active.start.elapsed());
        SPAN_STACK.with(|stack| {
            stack.borrow_mut().pop();
        });
        crate::emit(&Event::SpanClose {
            path: &active.path,
            depth: active.depth,
            wall_ns,
            attrs: &active.attrs,
        });
    }
}

/// Open a timed span: `span!("sweep")` or `span!("simulate", config_id)`.
///
/// Returns a [`SpanGuard`]; bind it to keep the span open. Attributes can
/// be bare identifiers (key is the identifier name) or `key = expr`
/// pairs; values are captured with `Display`. When telemetry is not
/// installed the attribute expressions are not evaluated.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        if $crate::enabled() {
            $crate::SpanGuard::enter($name, ::std::vec::Vec::new())
        } else {
            $crate::SpanGuard::disabled()
        }
    };
    ($name:expr, $($key:ident = $val:expr),+ $(,)?) => {
        if $crate::enabled() {
            $crate::SpanGuard::enter(
                $name,
                ::std::vec![$((stringify!($key), ($val).to_string())),+],
            )
        } else {
            $crate::SpanGuard::disabled()
        }
    };
    ($name:expr, $($key:ident),+ $(,)?) => {
        $crate::span!($name, $($key = $key),+)
    };
}

/// Record an instantaneous observation: `point!("prune/accept", hidden = h)`.
///
/// Attribute syntax matches [`span!`](crate::span). Does nothing (and
/// evaluates nothing) when telemetry is not installed.
#[macro_export]
macro_rules! point {
    ($name:expr) => {
        if $crate::enabled() {
            $crate::emit_point($name, &[]);
        }
    };
    ($name:expr, $($key:ident = $val:expr),+ $(,)?) => {
        if $crate::enabled() {
            $crate::emit_point(
                $name,
                &[$((stringify!($key), ($val).to_string())),+],
            );
        }
    };
    ($name:expr, $($key:ident),+ $(,)?) => {
        $crate::point!($name, $($key = $key),+)
    };
}
