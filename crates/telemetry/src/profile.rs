//! Span profiler: aggregate the `span!` tree into a hot-path table.
//!
//! While profiling is enabled (CLI `--profile`, or
//! [`TelemetryConfig::profile`](crate::TelemetryConfig::profile)), every
//! closing span feeds a [`Profiler`], which folds the event stream into
//! one row per distinct span *path* (the slash-joined ancestry, e.g.
//! `sampled_dse/rate/model/fit`): call count, total wall time, and
//! *self* time — total minus the time spent in child spans.
//!
//! Children close before their parent on the same thread, and a span
//! opened on a rayon worker thread starts a fresh ancestry there, so
//! attributing each closing span's wall time to its textual parent path
//! is exact per thread and additive across threads. Self time is
//! computed as a saturating subtraction: overlapping child time from
//! concurrently-reused paths can only make a parent look *busier*,
//! never produce negative self time.
//!
//! The aggregate is emitted two ways at run end: `profile` records in
//! the JSONL manifest (one per path) and, for humans,
//! [`render_table`] — a text table sorted by self time, the direct
//! "where did the wall clock go" answer.

use std::collections::HashMap;
use std::sync::Mutex;

use crate::json::JsonObject;

/// One aggregated span path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfileEntry {
    /// Slash-joined span ancestry.
    pub path: String,
    /// Number of times a span with this path closed.
    pub calls: u64,
    /// Total wall time across all calls, nanoseconds.
    pub total_ns: u64,
    /// Total minus time attributed to child spans, nanoseconds.
    pub self_ns: u64,
}

#[derive(Default)]
struct PathStat {
    calls: u64,
    total_ns: u64,
    child_ns: u64,
}

/// Accumulates closing spans into per-path totals. Thread-safe; one
/// lives in the installed run when profiling is enabled.
#[derive(Default)]
pub struct Profiler {
    stats: Mutex<HashMap<String, PathStat>>,
}

impl Profiler {
    /// A fresh, empty profiler.
    pub fn new() -> Profiler {
        Profiler::default()
    }

    /// Fold one closing span in.
    pub fn record(&self, path: &str, wall_ns: u64) {
        let mut stats = self.stats.lock().unwrap_or_else(|e| e.into_inner());
        {
            let entry = stats.entry(path.to_string()).or_default();
            entry.calls += 1;
            entry.total_ns = entry.total_ns.saturating_add(wall_ns);
        }
        if let Some((parent, _)) = path.rsplit_once('/') {
            let entry = stats.entry(parent.to_string()).or_default();
            entry.child_ns = entry.child_ns.saturating_add(wall_ns);
        }
    }

    /// Materialize the aggregate, sorted by self time descending (ties
    /// broken by path, so output is deterministic).
    pub(crate) fn snapshot(&self) -> Vec<ProfileEntry> {
        let stats = self.stats.lock().unwrap_or_else(|e| e.into_inner());
        let mut entries: Vec<ProfileEntry> = stats
            .iter()
            .map(|(path, s)| ProfileEntry {
                path: path.clone(),
                calls: s.calls,
                total_ns: s.total_ns,
                self_ns: s.total_ns.saturating_sub(s.child_ns),
            })
            .collect();
        entries.sort_by(|a, b| b.self_ns.cmp(&a.self_ns).then_with(|| a.path.cmp(&b.path)));
        entries
    }
}

impl ProfileEntry {
    /// Render the manifest `profile` record for this entry.
    pub fn to_manifest_record(&self) -> String {
        JsonObject::new()
            .str("type", "profile")
            .str("path", &self.path)
            .uint("calls", self.calls)
            .uint("total_ns", self.total_ns)
            .uint("self_ns", self.self_ns)
            .finish()
    }
}

/// Render the hot-path table: one row per path, sorted as given
/// (snapshot order = self time descending). Paths with zero calls are
/// impossible by construction; an empty slice renders an explanatory
/// one-liner instead of an empty table.
pub fn render_table(entries: &[ProfileEntry]) -> String {
    if entries.is_empty() {
        return "profile: no spans recorded\n".to_string();
    }
    let mut out = String::from(
        "hot paths (self time, descending):\n      self ms     total ms        calls  path\n",
    );
    for e in entries {
        out.push_str(&format!(
            "  {:>11.3}  {:>11.3}  {:>11}  {}\n",
            e.self_ns as f64 / 1e6,
            e.total_ns as f64 / 1e6,
            e.calls,
            e.path,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn self_time_subtracts_children() {
        let p = Profiler::new();
        // Two "sweep/simulate" children inside one "sweep" parent.
        p.record("sweep/simulate", 300);
        p.record("sweep/simulate", 200);
        p.record("sweep", 1000);
        let entries = p.snapshot();
        let sweep = entries.iter().find(|e| e.path == "sweep").unwrap();
        assert_eq!(sweep.calls, 1);
        assert_eq!(sweep.total_ns, 1000);
        assert_eq!(sweep.self_ns, 500);
        let sim = entries.iter().find(|e| e.path == "sweep/simulate").unwrap();
        assert_eq!(sim.calls, 2);
        assert_eq!(sim.total_ns, 500);
        assert_eq!(sim.self_ns, 500);
    }

    #[test]
    fn snapshot_sorts_by_self_time_then_path() {
        let p = Profiler::new();
        p.record("b", 10);
        p.record("a", 10);
        p.record("c", 99);
        let entries = p.snapshot();
        let paths: Vec<&str> = entries.iter().map(|e| e.path.as_str()).collect();
        assert_eq!(paths, ["c", "a", "b"]);
    }

    #[test]
    fn self_time_saturates_instead_of_underflowing() {
        let p = Profiler::new();
        // Concurrent children can report more wall time than the parent.
        p.record("par/child", 800);
        p.record("par/child", 800);
        p.record("par", 1000);
        let par = p.snapshot().into_iter().find(|e| e.path == "par").unwrap();
        assert_eq!(par.self_ns, 0);
    }

    #[test]
    fn table_renders_every_path() {
        let p = Profiler::new();
        p.record("fit/train", 2_000_000);
        p.record("fit", 3_000_000);
        let table = render_table(&p.snapshot());
        assert!(table.contains("fit/train"), "{table}");
        assert!(table.contains("hot paths"), "{table}");
        assert_eq!(render_table(&[]), "profile: no spans recorded\n");
    }

    #[test]
    fn manifest_record_has_profile_shape() {
        let e = ProfileEntry {
            path: "a/b".into(),
            calls: 3,
            total_ns: 500,
            self_ns: 200,
        };
        let v = crate::json::parse(&e.to_manifest_record()).expect("parses");
        use crate::json::Value;
        assert_eq!(v.get("type").and_then(Value::as_str), Some("profile"));
        assert_eq!(v.get("path").and_then(Value::as_str), Some("a/b"));
        assert_eq!(v.get("calls").and_then(Value::as_u64), Some(3));
        assert_eq!(v.get("self_ns").and_then(Value::as_u64), Some(200));
    }
}
