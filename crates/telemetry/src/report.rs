//! Perf-regression reports: compare a fresh run against committed
//! baselines.
//!
//! A [`MetricSet`] is a named bag of metrics loaded from either kind of
//! machine-readable artifact this workspace produces:
//!
//! * a JSONL **run manifest** (`--metrics-out`): `counter`, `gauge`,
//!   and `histogram` records become metrics (histograms contribute
//!   their p50/p90/p95/p99/max/mean);
//! * a **bench baseline** (`BENCH_*.json` from `scripts/bench.sh`):
//!   every result contributes `<bench>/mean_ns` and `<bench>/median_ns`.
//!
//! [`compare`] lines a current set up against a baseline set over their
//! shared metric names and classifies each latency-valued metric by the
//! ratio `current / baseline`: above `threshold` is a **regression**,
//! below `1 / threshold` an improvement, anything else unchanged.
//! Counters and unit-less gauges are reported as informational deltas
//! only — request counts legitimately differ between runs, so they
//! never fail a report. The CLI (`perfpredict perf-report`) renders the
//! table and exits nonzero (typed, code 6) when any regression
//! survives.
//!
//! Latency units are normalized to nanoseconds at load time: metric
//! names ending in `_ms` are scaled by 10⁶, `_ns` taken verbatim, so a
//! manifest gauge can be compared against a bench mean when both
//! describe the same quantity.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::Path;

use crate::hist::Histogram;
use crate::json::{parse, JsonObject, Value};

/// One metric value, tagged with how it may be compared.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Metric {
    /// A wall-time quantity in nanoseconds; eligible for the
    /// regression-threshold check (higher is worse).
    LatencyNs(f64),
    /// A monotonic count; informational only.
    Count(u64),
    /// Any other numeric reading; informational only.
    Value(f64),
}

/// A named bag of metrics from one or more artifacts.
#[derive(Debug, Default, Clone)]
pub struct MetricSet {
    /// Paths (or labels) the metrics were loaded from.
    pub sources: Vec<String>,
    /// Metric name → value. Later loads overwrite on collision.
    pub metrics: BTreeMap<String, Metric>,
}

impl MetricSet {
    /// An empty set.
    pub fn new() -> MetricSet {
        MetricSet::default()
    }

    /// Load a file, auto-detecting its kind: a single JSON object with
    /// a `results` array is a bench baseline, anything else is treated
    /// as a JSONL run manifest.
    pub fn load(&mut self, path: &Path) -> Result<(), String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let label = path.display().to_string();
        if let Ok(v) = parse(&text) {
            if matches!(v.get("results"), Some(Value::Arr(_))) {
                self.add_bench(&label, &v)?;
                self.sources.push(label);
                return Ok(());
            }
        }
        self.add_manifest(&label, &text)?;
        self.sources.push(label);
        Ok(())
    }

    /// Fold a bench baseline document in.
    fn add_bench(&mut self, label: &str, doc: &Value) -> Result<(), String> {
        let Some(Value::Arr(results)) = doc.get("results") else {
            return Err(format!("{label}: bench document has no 'results' array"));
        };
        for r in results {
            let name = r
                .get("bench")
                .and_then(Value::as_str)
                .ok_or_else(|| format!("{label}: bench result missing 'bench' name"))?;
            for field in ["mean_ns", "median_ns"] {
                if let Some(x) = r.get(field).and_then(Value::as_f64) {
                    self.metrics
                        .insert(format!("{name}/{field}"), Metric::LatencyNs(x));
                }
            }
        }
        Ok(())
    }

    /// Fold a JSONL run manifest in, line by line.
    fn add_manifest(&mut self, label: &str, text: &str) -> Result<(), String> {
        let mut any = false;
        for (i, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let v = parse(line).map_err(|e| format!("{label}:{}: {e}", i + 1))?;
            match v.get("type").and_then(Value::as_str) {
                Some("counter") => {
                    let name = v
                        .get("name")
                        .and_then(Value::as_str)
                        .ok_or_else(|| format!("{label}:{}: counter missing name", i + 1))?;
                    let value = v
                        .get("value")
                        .and_then(Value::as_u64)
                        .ok_or_else(|| format!("{label}:{}: counter missing value", i + 1))?;
                    self.metrics.insert(name.to_string(), Metric::Count(value));
                }
                Some("gauge") => {
                    let name = v
                        .get("name")
                        .and_then(Value::as_str)
                        .ok_or_else(|| format!("{label}:{}: gauge missing name", i + 1))?;
                    let value = v
                        .get("value")
                        .and_then(Value::as_f64)
                        .ok_or_else(|| format!("{label}:{}: gauge missing value", i + 1))?;
                    let metric = if name.ends_with("_ms") {
                        Metric::LatencyNs(value * 1e6)
                    } else if name.ends_with("_ns") {
                        Metric::LatencyNs(value)
                    } else {
                        Metric::Value(value)
                    };
                    self.metrics.insert(name.to_string(), metric);
                }
                Some("histogram") => {
                    let (name, h) = Histogram::from_manifest(&v)
                        .map_err(|e| format!("{label}:{}: {e}", i + 1))?;
                    self.add_histogram(&name, &h);
                }
                // meta / span / point / progress / profile / summary
                // lines carry no comparable metrics.
                Some(_) => {}
                None => return Err(format!("{label}:{}: line has no 'type' field", i + 1)),
            }
            any = true;
        }
        if !any {
            return Err(format!("{label}: empty manifest"));
        }
        Ok(())
    }

    /// Add the comparable projections of one histogram.
    pub(crate) fn add_histogram(&mut self, name: &str, h: &Histogram) {
        for (suffix, value) in [
            ("p50", h.quantile(0.50) as f64),
            ("p90", h.quantile(0.90) as f64),
            ("p95", h.quantile(0.95) as f64),
            ("p99", h.quantile(0.99) as f64),
            ("max", h.max() as f64),
            ("mean", h.mean()),
        ] {
            self.metrics
                .insert(format!("{name}/{suffix}"), Metric::LatencyNs(value));
        }
        self.metrics
            .insert(format!("{name}/count"), Metric::Count(h.count()));
    }
}

/// Verdict for one compared metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// Latency within `[baseline/threshold, baseline*threshold]`.
    Unchanged,
    /// Latency below `baseline / threshold`.
    Improved,
    /// Latency above `baseline * threshold` — fails the report.
    Regressed,
    /// Count/value metric: reported, never a failure.
    Info,
}

impl Status {
    /// Short machine tag (`ok` / `improved` / `regressed` / `info`).
    pub fn tag(&self) -> &'static str {
        match self {
            Status::Unchanged => "ok",
            Status::Improved => "improved",
            Status::Regressed => "regressed",
            Status::Info => "info",
        }
    }
}

/// One row of a report: a metric present in both sets.
#[derive(Debug, Clone)]
pub struct Delta {
    /// Metric name.
    pub name: String,
    /// Baseline reading (ns for latency metrics).
    pub baseline: f64,
    /// Current reading (ns for latency metrics).
    pub current: f64,
    /// `current / baseline`; `f64::INFINITY` when the baseline is 0
    /// and the current value is not.
    pub ratio: f64,
    /// Classification under the report threshold.
    pub status: Status,
}

/// The full comparison: per-metric rows plus the pass/fail rollup.
#[derive(Debug, Clone)]
pub struct Report {
    /// Regression threshold the rows were classified under.
    pub threshold: f64,
    /// All shared metrics, latency rows first, each group name-sorted.
    pub rows: Vec<Delta>,
}

impl Report {
    /// Rows classified as regressions.
    pub fn regressions(&self) -> Vec<&Delta> {
        self.rows
            .iter()
            .filter(|d| d.status == Status::Regressed)
            .collect()
    }

    /// True when no latency metric regressed.
    pub fn passed(&self) -> bool {
        self.rows.iter().all(|d| d.status != Status::Regressed)
    }

    /// Number of latency metrics actually compared.
    pub(crate) fn compared(&self) -> usize {
        self.rows
            .iter()
            .filter(|d| d.status != Status::Info)
            .count()
    }

    /// Human-readable table plus a one-line verdict.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "perf-report (threshold {:.2}x): {} latency metrics compared",
            self.threshold,
            self.compared(),
        );
        let _ = writeln!(
            out,
            "  {:<44} {:>14} {:>14} {:>8}  status",
            "metric", "baseline", "current", "ratio"
        );
        for d in &self.rows {
            let ratio = if d.ratio.is_finite() {
                format!("{:.3}", d.ratio)
            } else {
                "inf".to_string()
            };
            let _ = writeln!(
                out,
                "  {:<44} {:>14.0} {:>14.0} {:>8}  {}",
                d.name,
                d.baseline,
                d.current,
                ratio,
                d.status.tag()
            );
        }
        let regressed = self.regressions();
        if regressed.is_empty() {
            let _ = writeln!(out, "verdict: PASS");
        } else {
            let _ = writeln!(
                out,
                "verdict: REGRESSED ({} metric(s) beyond {:.2}x)",
                regressed.len(),
                self.threshold
            );
        }
        out
    }

    /// One JSON object summarizing the report (the CLI's `--json` mode).
    pub fn to_json(&self) -> String {
        let rows: Vec<String> = self
            .rows
            .iter()
            .map(|d| {
                JsonObject::new()
                    .str("metric", &d.name)
                    .num("baseline", d.baseline)
                    .num("current", d.current)
                    .num("ratio", d.ratio)
                    .str("status", d.status.tag())
                    .finish()
            })
            .collect();
        JsonObject::new()
            .str("type", "perf_report")
            .num("threshold", self.threshold)
            .uint("compared", self.compared() as u64)
            .uint("regressed", self.regressions().len() as u64)
            .bool("passed", self.passed())
            .raw("rows", &format!("[{}]", rows.join(",")))
            .finish()
    }
}

/// Compare `current` against `baseline` over their shared metric names.
///
/// `threshold` must be ≥ 1 (a 1.5 means "fail if 50 % slower").
/// Returns an error when the two sets share no latency metric — a
/// report that compares nothing must not report a pass.
pub fn compare(
    current: &MetricSet,
    baseline: &MetricSet,
    threshold: f64,
) -> Result<Report, String> {
    if !(threshold.is_finite() && threshold >= 1.0) {
        return Err(format!(
            "threshold must be a finite ratio >= 1, got {threshold}"
        ));
    }
    let mut latency = Vec::new();
    let mut info = Vec::new();
    for (name, cur) in &current.metrics {
        let Some(base) = baseline.metrics.get(name) else {
            continue;
        };
        match (base, cur) {
            (Metric::LatencyNs(b), Metric::LatencyNs(c)) => {
                let ratio = if *b > 0.0 {
                    c / b
                } else if *c > 0.0 {
                    f64::INFINITY
                } else {
                    1.0
                };
                let status = if ratio > threshold {
                    Status::Regressed
                } else if ratio < 1.0 / threshold {
                    Status::Improved
                } else {
                    Status::Unchanged
                };
                latency.push(Delta {
                    name: name.clone(),
                    baseline: *b,
                    current: *c,
                    ratio,
                    status,
                });
            }
            (Metric::Count(b), Metric::Count(c)) => {
                let (b, c) = (*b as f64, *c as f64);
                info.push(Delta {
                    name: name.clone(),
                    baseline: b,
                    current: c,
                    ratio: if b > 0.0 { c / b } else { 1.0 },
                    status: Status::Info,
                });
            }
            (Metric::Value(b), Metric::Value(c)) => {
                info.push(Delta {
                    name: name.clone(),
                    baseline: *b,
                    current: *c,
                    ratio: if *b != 0.0 { c / b } else { 1.0 },
                    status: Status::Info,
                });
            }
            // Mismatched kinds under the same name: skip rather than
            // invent a comparison.
            _ => {}
        }
    }
    if latency.is_empty() {
        return Err(format!(
            "no latency metrics shared between current ({}) and baseline ({})",
            current.sources.join(", "),
            baseline.sources.join(", ")
        ));
    }
    let mut rows = latency;
    rows.extend(info);
    Ok(Report { threshold, rows })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench_doc(mean: u64) -> String {
        format!(
            "{{\"mode\":\"quick\",\"results\":[\n\
             {{\"bench\":\"serve/replay_cached\",\"mean_ns\":{mean},\"median_ns\":{mean},\"samples\":10,\"iters_per_sample\":9}}\n\
             ]}}"
        )
    }

    fn load_str(text: &str, name: &str) -> MetricSet {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("perf_report_test_{}_{name}", std::process::id()));
        std::fs::write(&path, text).expect("write temp");
        let mut set = MetricSet::new();
        set.load(&path).expect("load");
        std::fs::remove_file(&path).ok();
        set
    }

    #[test]
    fn bench_vs_bench_pass_and_regress() {
        let base = load_str(&bench_doc(1_000_000), "base.json");
        let same = load_str(&bench_doc(1_100_000), "same.json");
        let report = compare(&same, &base, 1.5).expect("comparable");
        assert!(report.passed());
        assert_eq!(report.compared(), 2); // mean + median

        let slow = load_str(&bench_doc(10_000_000), "slow.json");
        let report = compare(&slow, &base, 1.5).expect("comparable");
        assert!(!report.passed());
        assert_eq!(report.regressions().len(), 2);
        assert!(report.render_text().contains("REGRESSED"));
    }

    #[test]
    fn improvement_is_not_a_failure() {
        let base = load_str(&bench_doc(10_000_000), "ibase.json");
        let fast = load_str(&bench_doc(1_000_000), "ifast.json");
        let report = compare(&fast, &base, 1.5).expect("comparable");
        assert!(report.passed());
        assert!(report.rows.iter().any(|d| d.status == Status::Improved));
    }

    #[test]
    fn manifest_metrics_compare_against_manifest() {
        let mut h = Histogram::new();
        for v in 1..=100u64 {
            h.observe(v * 10_000);
        }
        let manifest = format!(
            "{}\n{}\n{}\n{}\n",
            r#"{"type":"meta","schema":"perfpredict.telemetry/v1","label":"t"}"#,
            r#"{"type":"counter","name":"serve/requests","value":100}"#,
            r#"{"type":"gauge","name":"serve/p95_ms","value":2.5}"#,
            h.to_manifest_record("serve/latency_ns"),
        );
        let base = load_str(&manifest, "mbase.jsonl");
        let cur = load_str(&manifest, "mcur.jsonl");
        let report = compare(&cur, &base, 1.2).expect("comparable");
        assert!(report.passed());
        // Histogram quantiles and the _ms gauge all became latency rows.
        assert!(report.rows.iter().any(|d| d.name == "serve/latency_ns/p99"));
        assert!(report
            .rows
            .iter()
            .any(|d| d.name == "serve/p95_ms" && d.baseline == 2.5e6));
        // The counter shows up as info, never a verdict.
        let req = report
            .rows
            .iter()
            .find(|d| d.name == "serve/requests/count" || d.name == "serve/requests")
            .expect("counter row");
        assert_eq!(req.status, Status::Info);
    }

    #[test]
    fn disjoint_sets_are_an_error_not_a_pass() {
        let a = load_str(&bench_doc(1_000), "da.json");
        let manifest = format!(
            "{}\n{}\n",
            r#"{"type":"meta","schema":"perfpredict.telemetry/v1","label":"t"}"#,
            r#"{"type":"counter","name":"x","value":1}"#,
        );
        let b = load_str(&manifest, "db.jsonl");
        assert!(compare(&b, &a, 1.5).is_err());
    }

    #[test]
    fn bad_threshold_is_rejected() {
        let a = load_str(&bench_doc(1_000), "ta.json");
        for bad in [0.5, 0.0, -1.0, f64::NAN] {
            assert!(compare(&a, &a, bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn zero_baseline_with_nonzero_current_regresses() {
        let mut base = MetricSet::new();
        base.sources.push("b".into());
        base.metrics.insert("x_ns".into(), Metric::LatencyNs(0.0));
        let mut cur = MetricSet::new();
        cur.sources.push("c".into());
        cur.metrics.insert("x_ns".into(), Metric::LatencyNs(5.0));
        let report = compare(&cur, &base, 2.0).expect("comparable");
        assert!(!report.passed());
    }

    #[test]
    fn report_json_is_parseable() {
        let base = load_str(&bench_doc(1_000_000), "jb.json");
        let cur = load_str(&bench_doc(9_000_000), "jc.json");
        let report = compare(&cur, &base, 1.5).expect("comparable");
        let v = parse(&report.to_json()).expect("parses");
        assert_eq!(v.get("passed"), Some(&Value::Bool(false)));
        assert_eq!(v.get("regressed").and_then(Value::as_u64), Some(2));
    }

    #[test]
    fn malformed_inputs_error() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("perf_report_bad_{}", std::process::id()));
        std::fs::write(&path, "not json at all\n").expect("write");
        let mut set = MetricSet::new();
        assert!(set.load(&path).is_err());
        std::fs::remove_file(&path).ok();
        let mut missing = MetricSet::new();
        assert!(missing.load(Path::new("/nonexistent/nope.json")).is_err());
    }
}
