//! Observability layer for the perfpredict workspace.
//!
//! Nothing here depends on external crates: spans, counters, progress,
//! and both sinks are built on `std` only, so the telemetry layer works
//! in the offline build environment and adds a single relaxed atomic
//! load of overhead when no run is installed.
//!
//! # Model
//!
//! A *run* is installed process-globally with [`install`]; while it is
//! active, [`span!`] guards time hierarchical stages, [`counter_add`] /
//! [`gauge_set`] / [`gauge_max`] accumulate named metrics (counters are
//! sharded for rayon-parallel callers), [`hist_observe_ns`] /
//! [`hist_merge`] feed bounded-memory streaming latency histograms
//! ([`hist`]), [`point!`] records instantaneous events, and
//! [`Progress`] throttles per-item ticks to decile updates. With
//! [`TelemetryConfig::profile`] enabled, closing spans also feed a
//! per-path self/total-time profile ([`profile`]), and the
//! [`report`] module compares a finished manifest against committed
//! `BENCH_*.json` baselines (`perfpredict perf-report`).
//! Every event is fanned out to the configured [`Sink`]s: a console sink
//! whose verbosity comes from `PERFPREDICT_LOG` (or the CLI `--trace`
//! flag) and a JSON-lines manifest sink (`--metrics-out <path>`).
//! [`RunHandle::finish`] tears the run down and returns a [`RunSummary`]
//! with wall time and metric rollups for one-line end-of-run reports.
//!
//! ```
//! let run = telemetry::install(telemetry::TelemetryConfig::new("demo")).unwrap();
//! {
//!     let _outer = telemetry::span!("sweep");
//!     let _inner = telemetry::span!("simulate", config_id = 7);
//!     telemetry::counter_add("sim/windows", 3);
//! }
//! let summary = run.finish();
//! assert_eq!(summary.counters, vec![("sim/windows".to_string(), 3)]);
//! ```
//!
//! When no run is installed every entry point returns immediately, so
//! instrumented hot loops (the simulator window loop, NN epochs) cost a
//! branch on an atomic bool.

use std::collections::HashMap;
use std::io;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock, RwLock};
use std::time::Instant;

pub mod hist;
pub mod json;
pub mod profile;
pub mod report;

mod counters;
mod progress;
mod sink;
mod span;

pub(crate) use counters::{Gauge, ShardedCounter};
pub use hist::{AtomicHistogram, Histogram};
pub use profile::ProfileEntry;
pub use progress::Progress;
pub use sink::{ConsoleLevel, Event, RunSummary};
pub(crate) use sink::{ConsoleSink, JsonlSink, Sink};
pub use span::SpanGuard;

struct Global {
    enabled: AtomicBool,
    run: RwLock<Option<Arc<RunState>>>,
}

fn global() -> &'static Global {
    static GLOBAL: OnceLock<Global> = OnceLock::new();
    GLOBAL.get_or_init(|| Global {
        enabled: AtomicBool::new(false),
        run: RwLock::new(None),
    })
}

struct RunState {
    label: String,
    start: Instant,
    sinks: Vec<Box<dyn Sink>>,
    counters: RwLock<HashMap<String, Arc<ShardedCounter>>>,
    gauges: RwLock<HashMap<String, Arc<Gauge>>>,
    hists: RwLock<HashMap<String, Arc<AtomicHistogram>>>,
    profiler: Option<profile::Profiler>,
}

impl RunState {
    fn counter(&self, name: &str) -> Arc<ShardedCounter> {
        if let Some(c) = self
            .counters
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .get(name)
        {
            return Arc::clone(c);
        }
        let mut map = self.counters.write().unwrap_or_else(|e| e.into_inner());
        Arc::clone(
            map.entry(name.to_string())
                .or_insert_with(|| Arc::new(ShardedCounter::new())),
        )
    }

    fn gauge(&self, name: &str, initial: f64) -> Arc<Gauge> {
        if let Some(g) = self
            .gauges
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .get(name)
        {
            return Arc::clone(g);
        }
        let mut map = self.gauges.write().unwrap_or_else(|e| e.into_inner());
        Arc::clone(
            map.entry(name.to_string())
                .or_insert_with(|| Arc::new(Gauge::new(initial))),
        )
    }

    fn hist(&self, name: &str) -> Arc<AtomicHistogram> {
        if let Some(h) = self
            .hists
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .get(name)
        {
            return Arc::clone(h);
        }
        let mut map = self.hists.write().unwrap_or_else(|e| e.into_inner());
        Arc::clone(
            map.entry(name.to_string())
                .or_insert_with(|| Arc::new(AtomicHistogram::new())),
        )
    }
}

fn current_run() -> Option<Arc<RunState>> {
    if !enabled() {
        return None;
    }
    global()
        .run
        .read()
        .unwrap_or_else(|e| e.into_inner())
        .as_ref()
        .map(Arc::clone)
}

/// True while a telemetry run is installed. One relaxed atomic load.
#[inline]
pub fn enabled() -> bool {
    global().enabled.load(Ordering::Relaxed)
}

/// Fan one event out to the installed run's sinks (no-op when disabled).
pub fn emit(event: &Event<'_>) {
    let Some(run) = current_run() else {
        return;
    };
    if let (Some(profiler), Event::SpanClose { path, wall_ns, .. }) = (&run.profiler, event) {
        profiler.record(path, *wall_ns);
    }
    let t_ms = run.start.elapsed().as_secs_f64() * 1e3;
    for sink in &run.sinks {
        sink.record(t_ms, event);
    }
}

/// Implementation target of the [`point!`] macro.
#[doc(hidden)]
pub fn emit_point(name: &str, attrs: &[(&'static str, String)]) {
    emit(&Event::Point { name, attrs });
}

/// Add `delta` to the named counter (no-op when disabled).
pub fn counter_add(name: &str, delta: u64) {
    if let Some(run) = current_run() {
        run.counter(name).add(delta);
    }
}

/// Overwrite the named gauge (no-op when disabled).
pub fn gauge_set(name: &str, value: f64) {
    if let Some(run) = current_run() {
        run.gauge(name, value).set(value);
    }
}

/// Raise the named gauge to `value` if larger (no-op when disabled).
pub fn gauge_max(name: &str, value: f64) {
    if let Some(run) = current_run() {
        run.gauge(name, value).max(value);
    }
}

/// Record one observation into the named streaming histogram (no-op
/// when disabled). Histograms are registered on first use, like
/// counters, and emitted as `histogram` manifest records at run end.
pub fn hist_observe(name: &str, value: u64) {
    if let Some(run) = current_run() {
        run.hist(name).observe(value);
    }
}

/// Record a duration into the named histogram as saturating whole
/// nanoseconds (no-op when disabled).
pub fn hist_observe_ns(name: &str, d: std::time::Duration) {
    if let Some(run) = current_run() {
        run.hist(name).observe_ns(d);
    }
}

/// Fold a locally-accumulated [`Histogram`] (e.g. one per worker
/// shard) into the named registry histogram (no-op when disabled).
/// Bucket addition commutes, so merge order never changes quantiles.
pub fn hist_merge(name: &str, h: &Histogram) {
    if let Some(run) = current_run() {
        run.hist(name).merge_from(h);
    }
}

/// Configuration for [`install`].
#[derive(Debug, Clone)]
pub struct TelemetryConfig {
    /// Run label used in console output and the manifest meta line.
    pub label: String,
    /// Console verbosity (defaults to `PERFPREDICT_LOG`).
    pub console: ConsoleLevel,
    /// Where to write the JSON-lines run manifest, if anywhere.
    pub jsonl_path: Option<PathBuf>,
    /// Aggregate closing spans into a per-path self/total-time profile
    /// (the CLI `--profile` flag), reported in the [`RunSummary`] and
    /// as `profile` manifest records.
    pub profile: bool,
    /// Extra key/value pairs for the manifest meta line (seed, options…).
    pub meta: Vec<(String, String)>,
}

impl TelemetryConfig {
    /// A config with console level from the environment and no manifest.
    pub fn new(label: impl Into<String>) -> Self {
        TelemetryConfig {
            label: label.into(),
            console: ConsoleLevel::from_env(),
            jsonl_path: None,
            profile: false,
            meta: Vec::new(),
        }
    }

    /// Enable (or disable) the span profiler for this run.
    pub fn profile(mut self, on: bool) -> Self {
        self.profile = on;
        self
    }

    /// Override the console verbosity (e.g. for a `--trace` flag).
    pub fn console(mut self, level: ConsoleLevel) -> Self {
        self.console = level;
        self
    }

    /// Write a JSON-lines manifest to `path`.
    pub fn jsonl(mut self, path: impl Into<PathBuf>) -> Self {
        self.jsonl_path = Some(path.into());
        self
    }

    /// Attach one meta key/value to the manifest header.
    pub fn meta(mut self, key: impl Into<String>, value: impl std::fmt::Display) -> Self {
        self.meta.push((key.into(), value.to_string()));
        self
    }
}

/// Handle to the installed run; call [`RunHandle::finish`] to tear it
/// down and collect the [`RunSummary`]. Dropping the handle without
/// finishing uninstalls silently (used on early-error paths).
#[must_use = "telemetry stays installed until the handle is finished or dropped"]
pub struct RunHandle {
    finished: bool,
}

/// Install a process-global telemetry run.
///
/// Returns an error only if the manifest file cannot be created. A
/// second install replaces the previous run (its sinks are dropped
/// without a summary); in-process tests that install telemetry must run
/// in separate processes or serialize themselves.
pub fn install(config: TelemetryConfig) -> io::Result<RunHandle> {
    let mut sinks: Vec<Box<dyn Sink>> = Vec::new();
    if config.console > ConsoleLevel::Off {
        sinks.push(Box::new(ConsoleSink::new(config.console)));
    }
    if let Some(path) = &config.jsonl_path {
        sinks.push(Box::new(JsonlSink::create(
            path,
            &config.label,
            &config.meta,
        )?));
    }
    let state = Arc::new(RunState {
        label: config.label,
        start: Instant::now(),
        sinks,
        counters: RwLock::new(HashMap::new()),
        gauges: RwLock::new(HashMap::new()),
        hists: RwLock::new(HashMap::new()),
        profiler: config.profile.then(profile::Profiler::new),
    });
    let g = global();
    *g.run.write().unwrap_or_else(|e| e.into_inner()) = Some(state);
    g.enabled.store(true, Ordering::Relaxed);
    Ok(RunHandle { finished: false })
}

fn uninstall() -> Option<Arc<RunState>> {
    let g = global();
    g.enabled.store(false, Ordering::Relaxed);
    g.run.write().unwrap_or_else(|e| e.into_inner()).take()
}

impl RunHandle {
    /// Tear down the run, flush sinks, and return the metric rollup.
    pub fn finish(mut self) -> RunSummary {
        self.finished = true;
        let Some(run) = uninstall() else {
            // Replaced by a later install; report an empty summary.
            return RunSummary {
                label: String::new(),
                wall: std::time::Duration::ZERO,
                counters: Vec::new(),
                gauges: Vec::new(),
                hists: Vec::new(),
                profile: Vec::new(),
            };
        };
        let mut counters: Vec<(String, u64)> = run
            .counters
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|(k, c)| (k.clone(), c.value()))
            .collect();
        counters.sort();
        let mut gauges: Vec<(String, f64)> = run
            .gauges
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|(k, g)| (k.clone(), g.get()))
            .collect();
        gauges.sort_by(|a, b| a.0.cmp(&b.0));
        let mut hists: Vec<(String, Histogram)> = run
            .hists
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|(k, h)| (k.clone(), h.snapshot()))
            .collect();
        hists.sort_by(|a, b| a.0.cmp(&b.0));
        let profile = run
            .profiler
            .as_ref()
            .map(|p| p.snapshot())
            .unwrap_or_default();
        let summary = RunSummary {
            label: run.label.clone(),
            wall: run.start.elapsed(),
            counters,
            gauges,
            hists,
            profile,
        };
        for sink in &run.sinks {
            sink.run_end(&summary);
        }
        summary
    }
}

impl Drop for RunHandle {
    fn drop(&mut self) {
        if !self.finished {
            let _ = uninstall();
        }
    }
}
