//! Minimal JSON writing and parsing.
//!
//! The vendored serde stand-in (`crates/compat/serde`) has no data model,
//! so machine-readable output is produced here instead: [`JsonObject`]
//! builds one RFC 8259 object as a `String`, and [`parse`] reads one back
//! into a [`Value`] tree. Both sides are used in-tree — the JSON-lines
//! manifest sink writes with [`JsonObject`], and the manifest tests (plus
//! any downstream tooling) read with [`parse`] — so every line the sink
//! emits is round-trip checked by the test suite.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Escape a string for inclusion in a JSON document (without quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Format a float the way JSON expects (no NaN/Inf — mapped to null).
pub fn number(x: f64) -> String {
    if x.is_finite() {
        // Shortest representation that round-trips is overkill here;
        // `{}` on f64 already round-trips in Rust.
        format!("{x}")
    } else {
        "null".to_string()
    }
}

/// Incremental builder for a single JSON object.
#[derive(Debug)]
pub struct JsonObject {
    buf: String,
    first: bool,
}

impl Default for JsonObject {
    fn default() -> Self {
        Self::new()
    }
}

impl JsonObject {
    /// Start an empty object.
    pub fn new() -> Self {
        JsonObject {
            buf: String::from("{"),
            first: true,
        }
    }

    fn key(&mut self, k: &str) {
        if !self.first {
            self.buf.push(',');
        }
        self.first = false;
        let _ = write!(self.buf, "\"{}\":", escape(k));
    }

    /// Add a string field.
    pub fn str(mut self, k: &str, v: &str) -> Self {
        self.key(k);
        let _ = write!(self.buf, "\"{}\"", escape(v));
        self
    }

    /// Add a float field (NaN/Inf become null).
    pub fn num(mut self, k: &str, v: f64) -> Self {
        self.key(k);
        self.buf.push_str(&number(v));
        self
    }

    /// Add an unsigned integer field.
    pub fn uint(mut self, k: &str, v: u64) -> Self {
        self.key(k);
        let _ = write!(self.buf, "{v}");
        self
    }

    /// Add a `usize` field — the typed conversion callers would
    /// otherwise spell as `x as u64` at every count/length site.
    pub fn usize(self, k: &str, v: usize) -> Self {
        self.uint(k, u64::try_from(v).unwrap_or(u64::MAX))
    }

    /// Add a boolean field.
    pub fn bool(mut self, k: &str, v: bool) -> Self {
        self.key(k);
        self.buf.push_str(if v { "true" } else { "false" });
        self
    }

    /// Add a pre-rendered JSON value verbatim (object, array, …).
    pub fn raw(mut self, k: &str, v: &str) -> Self {
        self.key(k);
        self.buf.push_str(v);
        self
    }

    /// Close the object and return the JSON text.
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (parsed as f64).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object (insertion order not preserved; keyed lookup).
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// String content, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric content, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// Numeric content as u64 (must be a non-negative integer).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(x) if *x >= 0.0 && x.fract() == 0.0 => Some(*x as u64),
            _ => None,
        }
    }
}

/// Parse one JSON document. Errors carry a byte offset and description.
pub fn parse(input: &str) -> Result<Value, String> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => Ok(Value::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Value::Null),
        Some(_) => parse_number(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Value) -> Result<Value, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("invalid literal at byte {pos}", pos = *pos))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Value::Num)
        .map_err(|_| format!("invalid number '{text}' at byte {start}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(b[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b.get(*pos + 1..*pos + 5).ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                            16,
                        )
                        .map_err(|e| e.to_string())?;
                        // Surrogate pairs are not produced by our writer;
                        // map lone surrogates to the replacement char.
                        out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar.
                let rest = std::str::from_utf8(&b[*pos..]).map_err(|e| e.to_string())?;
                let Some(c) = rest.chars().next() else {
                    return Err(format!("unterminated string at byte {}", *pos));
                };
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    debug_assert_eq!(b[*pos], b'{');
    *pos += 1;
    let mut map = BTreeMap::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Obj(map));
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {}", *pos));
        }
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {}", *pos));
        }
        *pos += 1;
        let value = parse_value(b, pos)?;
        map.insert(key, value);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Obj(map));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    debug_assert_eq!(b[*pos], b'[');
    *pos += 1;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_and_parser_round_trip() {
        let line = JsonObject::new()
            .str("type", "span")
            .str("path", "a/b")
            .num("wall_ms", 12.5)
            .uint("count", 42)
            .bool("ok", true)
            .raw("attrs", "{\"model\":\"NN-E\"}")
            .finish();
        let v = parse(&line).expect("parses");
        assert_eq!(v.get("type").unwrap().as_str(), Some("span"));
        assert_eq!(v.get("wall_ms").unwrap().as_f64(), Some(12.5));
        assert_eq!(v.get("count").unwrap().as_u64(), Some(42));
        assert_eq!(v.get("ok"), Some(&Value::Bool(true)));
        assert_eq!(
            v.get("attrs").unwrap().get("model").unwrap().as_str(),
            Some("NN-E")
        );
    }

    #[test]
    fn histogram_and_profile_records_round_trip() {
        // The two PR 6 manifest record shapes: a histogram with a sparse
        // nested bucket array, and a flat profile row.
        let mut h = crate::hist::Histogram::new();
        for v in [1u64, 64, 4_096, 1_000_000] {
            h.observe(v);
        }
        let line = h.to_manifest_record("serve/latency_ns");
        let v = parse(&line).expect("histogram record parses");
        assert_eq!(v.get("type").unwrap().as_str(), Some("histogram"));
        assert_eq!(v.get("count").unwrap().as_u64(), Some(4));
        let Some(Value::Arr(buckets)) = v.get("buckets") else {
            panic!("buckets must be an array: {line}");
        };
        assert_eq!(buckets.len(), 4);
        let (name, back) =
            crate::hist::Histogram::from_manifest(&v).expect("histogram record decodes");
        assert_eq!(name, "serve/latency_ns");
        assert_eq!(back, h);

        let entry = crate::profile::ProfileEntry {
            path: "sweep/simulate".to_string(),
            calls: 288,
            total_ns: 1_500_000,
            self_ns: 1_200_000,
        };
        let v = parse(&entry.to_manifest_record()).expect("profile record parses");
        assert_eq!(v.get("type").unwrap().as_str(), Some("profile"));
        assert_eq!(v.get("path").unwrap().as_str(), Some("sweep/simulate"));
        assert_eq!(v.get("calls").unwrap().as_u64(), Some(288));
        assert_eq!(v.get("total_ns").unwrap().as_u64(), Some(1_500_000));
        assert_eq!(v.get("self_ns").unwrap().as_u64(), Some(1_200_000));
    }

    #[test]
    fn escapes_control_and_quote_characters() {
        let line = JsonObject::new().str("k", "a\"b\\c\nd\te\u{1}").finish();
        let v = parse(&line).expect("parses");
        assert_eq!(v.get("k").unwrap().as_str(), Some("a\"b\\c\nd\te\u{1}"));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("{\"a\":}").is_err());
        assert!(parse("{\"a\":1,}").is_err());
        assert!(parse("[1 2]").is_err());
        assert!(parse("{\"a\":1} extra").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a":[1,2,{"b":null}],"c":-1.5e2}"#).unwrap();
        assert_eq!(v.get("c").unwrap().as_f64(), Some(-150.0));
        match v.get("a") {
            Some(Value::Arr(items)) => {
                assert_eq!(items.len(), 3);
                assert_eq!(items[2].get("b"), Some(&Value::Null));
            }
            other => panic!("expected array, got {other:?}"),
        }
    }

    #[test]
    fn nonfinite_numbers_become_null() {
        let line = JsonObject::new().num("x", f64::NAN).finish();
        let v = parse(&line).unwrap();
        assert_eq!(v.get("x"), Some(&Value::Null));
    }
}
