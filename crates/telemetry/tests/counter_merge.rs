//! Counter correctness under rayon-style parallelism.
//!
//! Lives in its own integration-test binary because it installs the
//! process-global telemetry run; sharing a process with other
//! install/finish tests would race on the global state.

use rayon::prelude::*;

#[test]
fn parallel_counter_increments_are_not_lost() {
    let run =
        telemetry::install(telemetry::TelemetryConfig::new("counter_merge")).expect("install");

    const TASKS: usize = 64;
    const PER_TASK: u64 = 5_000;
    let results: Vec<u64> = (0..TASKS)
        .collect::<Vec<_>>()
        .par_iter()
        .map(|_| {
            for _ in 0..PER_TASK {
                telemetry::counter_add("merge/hits", 1);
            }
            telemetry::counter_add("merge/tasks", 1);
            PER_TASK
        })
        .collect();
    assert_eq!(results.len(), TASKS);

    telemetry::gauge_max("merge/peak", 3.0);
    telemetry::gauge_max("merge/peak", 7.0);
    telemetry::gauge_max("merge/peak", 5.0);

    let summary = run.finish();
    let counter = |name: &str| {
        summary
            .counters
            .iter()
            .find(|(k, _)| k == name)
            .unwrap_or_else(|| panic!("counter {name} missing"))
            .1
    };
    assert_eq!(counter("merge/hits"), TASKS as u64 * PER_TASK);
    assert_eq!(counter("merge/tasks"), TASKS as u64);
    let peak = summary
        .gauges
        .iter()
        .find(|(k, _)| k == "merge/peak")
        .expect("gauge recorded")
        .1;
    assert_eq!(peak, 7.0);

    // After finish the fast path is off again and counters are dropped.
    assert!(!telemetry::enabled());
    telemetry::counter_add("merge/hits", 1); // must be a no-op, not a panic
}
