//! Span hierarchy and timing invariants, checked through the JSONL sink.
//!
//! Own integration-test binary: installs the process-global run.

use std::path::PathBuf;
use std::time::Duration;

use telemetry::json::{parse, Value};

fn manifest_path() -> PathBuf {
    std::env::temp_dir().join(format!(
        "telemetry_span_nesting_{}.jsonl",
        std::process::id()
    ))
}

#[test]
fn spans_nest_and_timings_are_monotonic() {
    let path = manifest_path();
    let run = telemetry::install(
        telemetry::TelemetryConfig::new("span_nesting")
            .jsonl(&path)
            .meta("purpose", "test"),
    )
    .expect("install");

    {
        let outer = telemetry::span!("outer", stage = "demo");
        std::thread::sleep(Duration::from_millis(5));
        {
            let _inner = telemetry::span!("inner", step = 1);
            std::thread::sleep(Duration::from_millis(5));
        }
        {
            let _inner = telemetry::span!("inner", step = 2);
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(outer.elapsed() >= Duration::from_millis(10));
    }
    let summary = run.finish();
    assert!(summary.wall >= Duration::from_millis(11));

    let text = std::fs::read_to_string(&path).expect("manifest written");
    let spans: Vec<Value> = text
        .lines()
        .map(|l| parse(l).expect("every line parses"))
        .filter(|v| v.get("type").and_then(Value::as_str) == Some("span"))
        .collect();

    // Children close before the parent, so they appear first, with the
    // parent path as a prefix and depth 2 under the root's depth 1.
    let paths: Vec<&str> = spans
        .iter()
        .map(|s| s.get("path").unwrap().as_str().unwrap())
        .collect();
    assert_eq!(paths, ["outer/inner", "outer/inner", "outer"]);
    for s in &spans {
        let depth = s.get("depth").unwrap().as_u64().unwrap();
        let slashes = s
            .get("path")
            .unwrap()
            .as_str()
            .unwrap()
            .matches('/')
            .count() as u64;
        assert_eq!(depth, slashes + 1, "depth matches path components");
    }

    // Timing: each inner span is at least its sleep; the outer span covers
    // both inners; event timestamps never run backwards.
    let wall = |i: usize| spans[i].get("wall_ms").unwrap().as_f64().unwrap();
    assert!(wall(0) >= 5.0, "first inner slept 5ms: {}", wall(0));
    assert!(wall(1) >= 1.0, "second inner slept 1ms: {}", wall(1));
    assert!(
        wall(2) >= wall(0) + wall(1),
        "outer ({}) must cover both inners ({} + {})",
        wall(2),
        wall(0),
        wall(1)
    );
    let t: Vec<f64> = spans
        .iter()
        .map(|s| s.get("t_ms").unwrap().as_f64().unwrap())
        .collect();
    assert!(t.windows(2).all(|w| w[0] <= w[1]), "t_ms monotonic: {t:?}");

    // Attributes round-trip, numeric values as numbers.
    assert_eq!(
        spans[0].get("attrs").unwrap().get("step").unwrap().as_u64(),
        Some(1)
    );
    assert_eq!(
        spans[2]
            .get("attrs")
            .unwrap()
            .get("stage")
            .unwrap()
            .as_str(),
        Some("demo")
    );

    std::fs::remove_file(&path).ok();
}
