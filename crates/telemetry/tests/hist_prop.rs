//! Property tests for the streaming histogram: merging shard-local
//! histograms in any order must be indistinguishable from observing
//! every value into a single histogram — the determinism guarantee the
//! sharded sweep and multi-worker serve paths rely on.

use proptest::prelude::*;
use telemetry::Histogram;

/// Deterministically partition `values` into `shards` buckets keyed by
/// a rolling assignment, then merge shard histograms in an order
/// derived from `order_seed`.
fn shard_and_merge(values: &[u64], shards: usize, order_seed: u64) -> Histogram {
    let shards = shards.max(1);
    let mut locals = vec![Histogram::new(); shards];
    for (i, &v) in values.iter().enumerate() {
        locals[(i + (v as usize % 3)) % shards].observe(v);
    }
    // Visit shards in a seed-dependent rotation/direction so distinct
    // seeds exercise distinct merge orders.
    let mut merged = Histogram::new();
    let rot = (order_seed as usize) % shards;
    let indices: Vec<usize> = (0..shards).map(|i| (i + rot) % shards).collect();
    if order_seed.is_multiple_of(2) {
        for &i in &indices {
            merged.merge(&locals[i]);
        }
    } else {
        for &i in indices.iter().rev() {
            merged.merge(&locals[i]);
        }
    }
    merged
}

proptest! {
    /// merge-then-quantile ≡ observe-all-then-quantile, for every
    /// shard count and merge order.
    #[test]
    fn merge_then_quantile_equals_observe_all(
        values in prop::collection::vec(0u64..u64::MAX, 1..200),
        shards in 1usize..9,
        order_seed in 0u64..1000,
    ) {
        let mut whole = Histogram::new();
        for &v in &values {
            whole.observe(v);
        }
        let merged = shard_and_merge(&values, shards, order_seed);
        prop_assert_eq!(&merged, &whole);
        prop_assert_eq!(merged.count(), values.len() as u64);
        prop_assert_eq!(merged.min(), *values.iter().min().expect("non-empty"));
        prop_assert_eq!(merged.max(), *values.iter().max().expect("non-empty"));
        for q in [0.0, 0.01, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0] {
            prop_assert_eq!(merged.quantile(q), whole.quantile(q));
        }
    }

    /// The quantile never under-reports: it is an upper bound for the
    /// exact rank statistic, within one sub-bucket of relative error.
    #[test]
    fn quantile_bounds_exact_rank_statistic(
        values in prop::collection::vec(1u64..1_000_000_000, 1..200),
    ) {
        let mut h = Histogram::new();
        let mut sorted = values.clone();
        sorted.sort_unstable();
        for &v in &values {
            h.observe(v);
        }
        for q in [0.5, 0.9, 0.99] {
            let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            let exact = sorted[rank - 1];
            let got = h.quantile(q);
            prop_assert!(got >= exact, "q={} got={} exact={}", q, got, exact);
            // Upper bound of the bucket holding `exact`: within 1/32.
            let bound = exact + exact / 32 + 1;
            prop_assert!(got <= bound.max(h.max().min(bound)), "q={} got={} exact={}", q, got, exact);
        }
    }

    /// Manifest encode → parse → decode is the identity on every
    /// histogram, including quantiles. The JSONL parser represents
    /// numbers as f64, so manifest u64 fields (including the running
    /// `sum`) are exact only below 2^53. Values are capped at 2^45 ns
    /// (~9.7 hours) so even 100 of them sum below that bound — real
    /// latency totals sit far inside this domain.
    #[test]
    fn manifest_round_trip_is_identity(
        values in prop::collection::vec(0u64..(1u64 << 45), 0..100),
    ) {
        let mut h = Histogram::new();
        for &v in &values {
            h.observe(v);
        }
        let record = h.to_manifest_record("t/prop_ns");
        let parsed = telemetry::json::parse(&record).expect("record parses");
        let (name, back) = Histogram::from_manifest(&parsed).expect("record decodes");
        prop_assert_eq!(name, "t/prop_ns".to_string());
        prop_assert_eq!(&back, &h);
        for q in [0.0, 0.5, 0.99, 1.0] {
            prop_assert_eq!(back.quantile(q), h.quantile(q));
        }
    }
}
