use specdata::{AnnouncementSet, ProcessorFamily};
fn main() {
    for f in ProcessorFamily::ALL {
        let set = AnnouncementSet::generate(f, 42);
        let (n, r, v) = set.summary();
        let p = f.paper_stats();
        println!(
            "{:10} n {:3} range {:.2} (paper {:.2}) variation {:.3} (paper {:.2})",
            f.name(),
            n,
            r,
            p.range,
            v,
            p.variation
        );
    }
}
