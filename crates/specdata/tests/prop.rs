//! Property-based tests for the SPEC announcement substrate.

use linalg::stats::geometric_mean;
use proptest::prelude::*;
use specdata::{generate_family, AnnouncementSet, ProcessorFamily};

fn arb_family() -> impl Strategy<Value = ProcessorFamily> {
    prop::sample::select(ProcessorFamily::ALL.to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Record counts match §4.1 regardless of seed, and every record sits
    /// inside the family's active years.
    #[test]
    fn population_invariants(fam in arb_family(), seed in 0u64..500) {
        let recs = generate_family(fam, seed);
        prop_assert_eq!(recs.len(), fam.paper_stats().records);
        let (y0, y1) = fam.year_span();
        for r in &recs {
            prop_assert!((y0..=y1).contains(&r.year));
            prop_assert!(r.specint_rate > 0.0);
            prop_assert!(r.processor_speed_mhz > 500.0 && r.processor_speed_mhz < 5000.0);
            prop_assert_eq!(r.total_chips, fam.chips());
            prop_assert_eq!(r.total_cores, fam.chips() * r.cores_per_chip);
            prop_assert!((1..=4).contains(&r.quarter));
        }
    }

    /// The published rating is always the geometric mean of the published
    /// per-application ratios.
    #[test]
    fn rating_identity_holds(fam in arb_family(), seed in 0u64..200) {
        let recs = generate_family(fam, seed);
        for r in recs.iter().take(25) {
            prop_assert_eq!(r.app_ratios.len(), 12);
            let g = geometric_mean(&r.app_ratios);
            prop_assert!((g - r.specint_rate).abs() / r.specint_rate < 1e-9);
        }
    }

    /// Faster clocks never hurt: within a family-year, the record with the
    /// highest clock has a rating no worse than 0.8x the one with the
    /// lowest clock (noise-tolerant monotonicity).
    #[test]
    fn clock_mostly_monotone(fam in arb_family(), seed in 0u64..100) {
        let set = AnnouncementSet::generate(fam, seed);
        let year = fam.year_span().1;
        let recs = set.year(year);
        if recs.len() >= 4 {
            let fastest = recs
                .iter()
                .max_by(|a, b| a.processor_speed_mhz.total_cmp(&b.processor_speed_mhz))
                .unwrap();
            let slowest = recs
                .iter()
                .min_by(|a, b| a.processor_speed_mhz.total_cmp(&b.processor_speed_mhz))
                .unwrap();
            prop_assert!(
                fastest.specint_rate > 0.8 * slowest.specint_rate,
                "clock {} rate {} vs clock {} rate {}",
                fastest.processor_speed_mhz,
                fastest.specint_rate,
                slowest.processor_speed_mhz,
                slowest.specint_rate
            );
        }
    }

    /// The chronological split partitions records without loss for any
    /// in-span training year.
    #[test]
    fn split_partitions(fam in arb_family(), seed in 0u64..100) {
        let set = AnnouncementSet::generate(fam, seed);
        let (y0, y1) = fam.year_span();
        for train_year in y0..y1 {
            let (train, test) = set.chronological_split(train_year);
            prop_assert_eq!(
                train.len() + test.len(),
                set.records
                    .iter()
                    .filter(|r| r.year == train_year || r.year == train_year + 1)
                    .count()
            );
        }
    }
}
