//! Announcement collections and the chronological year split.

use crate::family::ProcessorFamily;
use crate::generator::generate_family;
use crate::schema::Announcement;
use linalg::stats::{range_ratio, variation};
use serde::{Deserialize, Serialize};

/// A set of announcements for one processor family.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AnnouncementSet {
    /// The family all records belong to.
    pub family: ProcessorFamily,
    /// The records, in generation (chronological) order.
    pub records: Vec<Announcement>,
}

impl AnnouncementSet {
    /// Generate the family's full synthetic history.
    pub fn generate(family: ProcessorFamily, seed: u64) -> Self {
        AnnouncementSet {
            family,
            records: generate_family(family, seed),
        }
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Records announced in `year`.
    pub fn year(&self, year: u32) -> Vec<&Announcement> {
        self.records.iter().filter(|r| r.year == year).collect()
    }

    /// The chronological split the paper uses: train on `train_year`,
    /// predict `train_year + 1`. Panicking wrapper over
    /// [`AnnouncementSet::try_chronological_split`].
    pub fn chronological_split(&self, train_year: u32) -> (Vec<&Announcement>, Vec<&Announcement>) {
        match self.try_chronological_split(train_year) {
            Ok(split) => split,
            Err(e) => panic!(
                "{}: empty chronological split at {train_year}: {e}",
                self.family.name()
            ),
        }
    }

    /// Fallible chronological split: either side being empty is
    /// [`fault::Error::DegenerateData`] naming the missing year.
    pub fn try_chronological_split(
        &self,
        train_year: u32,
    ) -> fault::Result<(Vec<&Announcement>, Vec<&Announcement>)> {
        let train = self.year(train_year);
        let test = self.year(train_year + 1);
        if train.is_empty() || test.is_empty() {
            return Err(fault::Error::degenerate(format!(
                "{}: {} announcements in {train_year}, {} in {}; the chronological \
                 protocol needs both years populated",
                self.family.name(),
                train.len(),
                test.len(),
                train_year + 1
            )));
        }
        Ok((train, test))
    }

    /// All SPECint rates.
    pub fn rates(&self) -> Vec<f64> {
        self.records.iter().map(|r| r.specint_rate).collect()
    }

    /// §4.1-style summary: (records, range, variation).
    pub fn summary(&self) -> (usize, f64, f64) {
        let rates = self.rates();
        (self.records.len(), range_ratio(&rates), variation(&rates))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chronological_split_2005_2006_exists_for_all_families() {
        for f in ProcessorFamily::ALL {
            let set = AnnouncementSet::generate(f, 42);
            let (train, test) = set.chronological_split(2005);
            assert!(train.len() >= 10, "{}: train {}", f.name(), train.len());
            assert!(test.len() >= 10, "{}: test {}", f.name(), test.len());
            assert!(train.iter().all(|r| r.year == 2005));
            assert!(test.iter().all(|r| r.year == 2006));
        }
    }

    #[test]
    fn summary_reports_population_stats() {
        let set = AnnouncementSet::generate(ProcessorFamily::Opteron, 42);
        let (n, range, var) = set.summary();
        assert_eq!(n, 138);
        assert!(range > 1.0);
        assert!(var > 0.0);
    }

    #[test]
    fn year_filter_is_exact() {
        let set = AnnouncementSet::generate(ProcessorFamily::Xeon, 42);
        let y2004 = set.year(2004);
        assert!(!y2004.is_empty());
        assert!(y2004.iter().all(|r| r.year == 2004));
        assert!(set.year(1990).is_empty());
    }

    #[test]
    #[should_panic(expected = "empty chronological split")]
    fn split_outside_span_panics() {
        let set = AnnouncementSet::generate(ProcessorFamily::PentiumD, 42);
        let _ = set.chronological_split(1999);
    }
}
