//! Processor families and their year-indexed component trends.
//!
//! §4.1 selects seven populations from the SPEC database: Xeon, Pentium 4,
//! Pentium D, and AMD Opteron in 1-, 2-, 4-, and 8-socket SMP systems, and
//! reports for each the record count, performance range (best/worst ratio)
//! and variation. Those observed statistics are encoded here as generation
//! targets; the tests in [`crate::generator`] check the synthetic data
//! lands near them.

use serde::{Deserialize, Serialize};

/// One of the seven analyzed processor-family populations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ProcessorFamily {
    /// Intel Xeon single-socket servers.
    Xeon,
    /// Intel Pentium 4 desktops.
    Pentium4,
    /// Intel Pentium D dual-core desktops.
    PentiumD,
    /// AMD Opteron, 1 socket.
    Opteron,
    /// AMD Opteron, 2-socket SMP.
    Opteron2,
    /// AMD Opteron, 4-socket SMP.
    Opteron4,
    /// AMD Opteron, 8-socket SMP.
    Opteron8,
}

/// §4.1's published population statistics for a family.
#[derive(Debug, Clone, Copy)]
pub struct FamilyStats {
    /// Number of records in the database.
    pub records: usize,
    /// Best/worst performance ratio.
    pub range: f64,
    /// Variation (coefficient of variation) of the ratings.
    pub variation: f64,
}

impl ProcessorFamily {
    /// All seven families, in the paper's presentation order (Fig 7 then 8).
    pub const ALL: [ProcessorFamily; 7] = [
        ProcessorFamily::Xeon,
        ProcessorFamily::Pentium4,
        ProcessorFamily::PentiumD,
        ProcessorFamily::Opteron,
        ProcessorFamily::Opteron2,
        ProcessorFamily::Opteron4,
        ProcessorFamily::Opteron8,
    ];

    /// Display name as used in the figures.
    pub fn name(self) -> &'static str {
        match self {
            ProcessorFamily::Xeon => "Xeon",
            ProcessorFamily::Pentium4 => "Pentium 4",
            ProcessorFamily::PentiumD => "Pentium D",
            ProcessorFamily::Opteron => "Opteron",
            ProcessorFamily::Opteron2 => "Opteron 2",
            ProcessorFamily::Opteron4 => "Opteron 4",
            ProcessorFamily::Opteron8 => "Opteron 8",
        }
    }

    /// Parse from the display name.
    pub fn from_name(name: &str) -> Option<ProcessorFamily> {
        ProcessorFamily::ALL
            .iter()
            .copied()
            .find(|f| f.name() == name)
    }

    /// Number of sockets in this population's systems.
    pub fn chips(self) -> u32 {
        match self {
            ProcessorFamily::Opteron2 => 2,
            ProcessorFamily::Opteron4 => 4,
            ProcessorFamily::Opteron8 => 8,
            _ => 1,
        }
    }

    /// The §4.1 population statistics (records / range / variation).
    pub fn paper_stats(self) -> FamilyStats {
        match self {
            ProcessorFamily::Xeon => FamilyStats {
                records: 216,
                range: 1.34,
                variation: 0.09,
            },
            ProcessorFamily::Pentium4 => FamilyStats {
                records: 66,
                range: 3.72,
                variation: 0.34,
            },
            ProcessorFamily::PentiumD => FamilyStats {
                records: 71,
                range: 1.45,
                variation: 0.10,
            },
            ProcessorFamily::Opteron => FamilyStats {
                records: 138,
                range: 1.40,
                variation: 0.08,
            },
            ProcessorFamily::Opteron2 => FamilyStats {
                records: 152,
                range: 1.58,
                variation: 0.11,
            },
            ProcessorFamily::Opteron4 => FamilyStats {
                records: 158,
                range: 1.70,
                variation: 0.12,
            },
            ProcessorFamily::Opteron8 => FamilyStats {
                records: 58,
                range: 1.68,
                variation: 0.13,
            },
        }
    }

    /// Years the family appears in the database (inclusive). The overall
    /// SPEC CPU2000 archive spans 1999–2006; each family covers the slice
    /// it actually shipped in. Every family reaches 2006 so the
    /// 2005 → 2006 chronological split exists for all of them.
    pub fn year_span(self) -> (u32, u32) {
        match self {
            ProcessorFamily::Xeon => (2001, 2006),
            ProcessorFamily::Pentium4 => (2000, 2006),
            // "Pentium D results contain less than 2 years of data" (§4.3).
            ProcessorFamily::PentiumD => (2005, 2006),
            ProcessorFamily::Opteron | ProcessorFamily::Opteron2 | ProcessorFamily::Opteron4 => {
                (2003, 2006)
            }
            ProcessorFamily::Opteron8 => (2004, 2006),
        }
    }

    /// Manufacturer string.
    pub(crate) fn company_pool(self) -> &'static [&'static str] {
        match self {
            ProcessorFamily::Xeon => &["Dell", "HP", "IBM", "Fujitsu", "Supermicro", "Intel"],
            ProcessorFamily::Pentium4 | ProcessorFamily::PentiumD => {
                &["Dell", "HP", "Gateway", "Fujitsu", "Intel"]
            }
            _ => &["AMD", "HP", "Sun", "IBM", "Supermicro", "Tyan"],
        }
    }

    /// Clock range (MHz) available in a given year: (low, high). Trends
    /// follow the real products: P4 1.3→3.8 GHz over 2000–2006 (hence its
    /// huge 3.72× range), Opteron 1.4→2.8 GHz over 2003–2006, Xeon
    /// 1.4→3.8 GHz but the population is dominated by recent mid-range
    /// parts.
    pub(crate) fn clock_range_mhz(self, year: u32) -> (f64, f64) {
        let (y0, _) = self.year_span();
        let age = (year.saturating_sub(y0)) as f64;
        match self {
            ProcessorFamily::Pentium4 => {
                let lo = 1300.0 + 250.0 * age;
                let hi = 1700.0 + 360.0 * age;
                (lo, hi.min(3800.0))
            }
            ProcessorFamily::PentiumD => {
                let lo = 2660.0 + 140.0 * age;
                let hi = 3200.0 + 270.0 * age;
                (lo, hi.min(3730.0))
            }
            ProcessorFamily::Xeon => {
                // The SPEC Xeon population is dominated by late NetBurst
                // parts in a narrow clock band (hence the small 1.34x range).
                let lo = 3000.0 + 60.0 * age;
                let hi = 3400.0 + 120.0 * age;
                (lo.min(3400.0), hi.min(3800.0))
            }
            _ => {
                // Opteron families: the published population sits in the
                // 2.0-2.6 GHz band.
                let lo = 2000.0 + 60.0 * age;
                let hi = 2200.0 + 160.0 * age;
                (lo.min(2400.0), hi.min(2600.0))
            }
        }
    }

    /// L2 capacity options (KB) in a given year.
    pub(crate) fn l2_options_kb(self, year: u32) -> &'static [u32] {
        match self {
            ProcessorFamily::Pentium4 => {
                if year < 2002 {
                    &[256]
                } else if year < 2004 {
                    &[256, 512]
                } else {
                    &[512, 1024, 2048]
                }
            }
            ProcessorFamily::PentiumD => &[1024, 2048],
            ProcessorFamily::Xeon => {
                if year < 2003 {
                    &[512]
                } else if year < 2005 {
                    &[512, 1024]
                } else {
                    &[1024, 2048]
                }
            }
            _ => &[1024], // Opteron shipped with 1 MB L2 throughout
        }
    }

    /// Memory frequency options (MHz) in a given year.
    pub(crate) fn mem_freq_options(self, year: u32) -> &'static [f64] {
        if year < 2002 {
            &[133.0, 200.0, 266.0]
        } else if year < 2004 {
            &[266.0, 333.0, 400.0]
        } else if year < 2006 {
            &[333.0, 400.0, 533.0]
        } else {
            &[400.0, 533.0, 667.0]
        }
    }

    /// Front-side-bus options (MHz) in a given year.
    pub(crate) fn bus_options(self, year: u32) -> &'static [f64] {
        match self {
            ProcessorFamily::Pentium4 => {
                if year < 2003 {
                    &[400.0, 533.0]
                } else {
                    &[533.0, 800.0]
                }
            }
            ProcessorFamily::PentiumD => &[800.0, 1066.0],
            ProcessorFamily::Xeon => {
                if year < 2004 {
                    &[400.0, 533.0]
                } else {
                    &[667.0, 800.0, 1066.0]
                }
            }
            // HyperTransport speeds for Opteron.
            _ => &[800.0, 1000.0],
        }
    }

    /// Whether systems in this family may carry an L3 cache, and its size
    /// options (KB).
    pub(crate) fn l3_options_kb(self) -> &'static [u32] {
        match self {
            // L3 appears only rarely in this population; the generator's
            // Xeon records carry none (Clementine would drop the constant
            // columns, exactly as §3.4 describes).
            ProcessorFamily::Xeon => &[0],
            ProcessorFamily::Pentium4 => &[0, 0, 0, 0, 2048],
            _ => &[0],
        }
    }

    /// L1 cache sizes (I, D) in KB per core.
    pub(crate) fn l1_kb(self) -> (u32, u32) {
        match self {
            // Trace cache on NetBurst ≈ 16 KB equivalent, 16 KB L1D.
            ProcessorFamily::Pentium4 | ProcessorFamily::PentiumD | ProcessorFamily::Xeon => {
                (16, 16)
            }
            _ => (64, 64), // K8
        }
    }

    /// Whether the family supports SMT (hyper-threading).
    pub(crate) fn supports_smt(self) -> bool {
        matches!(
            self,
            ProcessorFamily::Xeon | ProcessorFamily::Pentium4 | ProcessorFamily::PentiumD
        )
    }

    /// Cores per chip.
    pub fn cores_per_chip(self) -> u32 {
        match self {
            ProcessorFamily::PentiumD => 2,
            _ => 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_roundtrip() {
        for f in ProcessorFamily::ALL {
            assert_eq!(ProcessorFamily::from_name(f.name()), Some(f));
        }
    }

    #[test]
    fn paper_record_counts() {
        assert_eq!(ProcessorFamily::Xeon.paper_stats().records, 216);
        assert_eq!(ProcessorFamily::Opteron.paper_stats().records, 138);
        assert_eq!(ProcessorFamily::Opteron8.paper_stats().records, 58);
    }

    #[test]
    fn all_families_reach_2006() {
        for f in ProcessorFamily::ALL {
            let (y0, y1) = f.year_span();
            assert!(y0 >= 1999 && y1 == 2006, "{}: {:?}", f.name(), (y0, y1));
            assert!(y0 < y1);
        }
    }

    #[test]
    fn pentium_d_has_short_history() {
        let (y0, y1) = ProcessorFamily::PentiumD.year_span();
        assert!(y1 - y0 <= 1, "Pentium D: less than 2 years of data");
    }

    #[test]
    fn clock_trends_increase() {
        for f in ProcessorFamily::ALL {
            let (y0, y1) = f.year_span();
            let (lo0, hi0) = f.clock_range_mhz(y0);
            let (lo1, hi1) = f.clock_range_mhz(y1);
            assert!(
                lo1 >= lo0 && hi1 >= hi0,
                "{} clocks should not regress",
                f.name()
            );
            assert!(lo0 < hi0);
        }
    }

    #[test]
    fn p4_spans_widest_clock_range() {
        let (lo, _) = ProcessorFamily::Pentium4.clock_range_mhz(2000);
        let (_, hi) = ProcessorFamily::Pentium4.clock_range_mhz(2006);
        assert!(hi / lo > 2.5, "P4 clock span drives its 3.72x range");
    }

    #[test]
    fn smp_chip_counts() {
        assert_eq!(ProcessorFamily::Opteron.chips(), 1);
        assert_eq!(ProcessorFamily::Opteron2.chips(), 2);
        assert_eq!(ProcessorFamily::Opteron4.chips(), 4);
        assert_eq!(ProcessorFamily::Opteron8.chips(), 8);
        assert_eq!(ProcessorFamily::Xeon.chips(), 1);
    }
}
