//! SPEC rating arithmetic.
//!
//! §4: "SPECint2000 rate … is the geometric mean of twelve normalized
//! ratios. A manufacturer runs a timed test on the system, and the time of
//! the test system is compared to the reference time, by which a ratio is
//! computed."

use linalg::stats::geometric_mean;
use rand::Rng;

/// The twelve SPECint2000 applications.
pub const SPECINT_APPS: [&str; 12] = [
    "gzip", "vpr", "gcc", "mcf", "crafty", "parser", "eon", "perlbmk", "gap", "vortex", "bzip2",
    "twolf",
];

/// The fourteen SPECfp2000 applications.
pub const SPECFP_APPS: [&str; 14] = [
    "wupwise", "swim", "mgrid", "applu", "mesa", "galgel", "art", "equake", "facerec", "ammp",
    "lucas", "fma3d", "sixtrack", "apsi",
];

/// Compute a SPEC rating from per-application ratios.
pub fn rating_from_ratios(ratios: &[f64]) -> f64 {
    geometric_mean(ratios)
}

/// Synthesize per-application ratios whose geometric mean is *exactly*
/// `rate`. Applications deviate log-normally around the rate (real systems
/// are relatively better at some apps than others); the deviations are
/// mean-centred in log space so the rating identity holds to rounding.
pub fn synthesize_ratios(rate: f64, n_apps: usize, spread: f64, rng: &mut impl Rng) -> Vec<f64> {
    assert!(rate > 0.0, "rate must be positive");
    assert!(n_apps > 0, "need at least one application");
    let mut logs: Vec<f64> = (0..n_apps)
        .map(|_| linalg::dist::sample_normal(rng, 0.0, spread))
        .collect();
    let mean_log: f64 = logs.iter().sum::<f64>() / n_apps as f64;
    for l in &mut logs {
        *l -= mean_log;
    }
    logs.iter().map(|l| rate * l.exp()).collect()
}

/// Normalized ratio of one run: reference time / measured time.
pub fn ratio(reference_seconds: f64, measured_seconds: f64) -> f64 {
    assert!(
        reference_seconds > 0.0 && measured_seconds > 0.0,
        "run times must be positive"
    );
    reference_seconds / measured_seconds
}

/// Synthesize *structured* per-application ratios: each application has a
/// fixed sensitivity profile over normalized system traits (clock, memory
/// frequency, L2 capacity, socket count), so memory-bound applications
/// genuinely respond to memory upgrades and so on. Deviations are
/// mean-centred in log space, keeping the geometric mean exactly `rate`,
/// and carry only a small idiosyncratic noise — which is what makes the
/// paper's (omitted) per-application predictions learnable.
///
/// `traits` are roughly standardized deviations of the system's components
/// from the family norm; `noise` is the per-app log-sd.
pub(crate) fn synthesize_structured_ratios(
    rate: f64,
    n_apps: usize,
    traits: &[f64],
    noise: f64,
    rng: &mut impl Rng,
) -> Vec<f64> {
    assert!(
        rate > 0.0 && n_apps > 0,
        "rate must be positive and apps nonzero"
    );
    // Fixed per-(app, trait) sensitivities derived from a hash so every
    // record agrees on each application's character.
    let coef = |app: usize, tr: usize| -> f64 {
        let h = linalg::dist::child_seed(0x5EC5, (app as u64) << 8 | tr as u64);
        // In [-0.12, 0.12].
        ((h % 2401) as f64 / 2400.0 - 0.5) * 0.24
    };
    let mut logs: Vec<f64> = (0..n_apps)
        .map(|a| {
            let structured: f64 = traits
                .iter()
                .enumerate()
                .map(|(t, &x)| coef(a, t) * x)
                .sum();
            structured + linalg::dist::sample_normal(rng, 0.0, noise)
        })
        .collect();
    let mean_log: f64 = logs.iter().sum::<f64>() / n_apps as f64;
    for l in &mut logs {
        *l -= mean_log;
    }
    logs.iter().map(|l| rate * l.exp()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use linalg::dist::seeded_rng;

    #[test]
    fn rating_of_uniform_ratios_is_the_ratio() {
        let r = rating_from_ratios(&[20.0; 12]);
        assert!((r - 20.0).abs() < 1e-12);
    }

    #[test]
    fn synthesized_ratios_hit_target_rate() {
        let mut rng = seeded_rng(1);
        for &rate in &[5.0, 25.0, 300.0] {
            let ratios = synthesize_ratios(rate, 12, 0.15, &mut rng);
            assert_eq!(ratios.len(), 12);
            let back = rating_from_ratios(&ratios);
            assert!((back - rate).abs() / rate < 1e-10, "rate {rate} -> {back}");
        }
    }

    #[test]
    fn ratios_vary_across_apps() {
        let mut rng = seeded_rng(2);
        let ratios = synthesize_ratios(50.0, 12, 0.2, &mut rng);
        let lo = ratios.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = ratios.iter().cloned().fold(0.0f64, f64::max);
        assert!(hi > lo * 1.05, "apps should differ: {lo}..{hi}");
    }

    #[test]
    fn ratio_definition() {
        assert!((ratio(1400.0, 700.0) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn structured_ratios_keep_the_rating_identity() {
        let mut rng = seeded_rng(5);
        let ratios = synthesize_structured_ratios(40.0, 12, &[0.5, -1.0, 0.2, 0.0], 0.02, &mut rng);
        let back = rating_from_ratios(&ratios);
        assert!((back - 40.0).abs() / 40.0 < 1e-10);
    }

    #[test]
    fn structured_ratios_respond_to_traits() {
        // Same rate, different traits -> systematically different app mix.
        let mut rng1 = seeded_rng(6);
        let mut rng2 = seeded_rng(6);
        let a = synthesize_structured_ratios(40.0, 12, &[2.0, 0.0, 0.0, 0.0], 0.0, &mut rng1);
        let b = synthesize_structured_ratios(40.0, 12, &[-2.0, 0.0, 0.0, 0.0], 0.0, &mut rng2);
        let diff: f64 = a.iter().zip(&b).map(|(x, y)| (x - y).abs()).sum();
        assert!(diff > 1.0, "traits must shape the per-app profile: {diff}");
    }

    #[test]
    fn app_lists_match_paper_counts() {
        assert_eq!(SPECINT_APPS.len(), 12, "12 integer applications");
        assert_eq!(SPECFP_APPS.len(), 14, "14 floating-point applications");
    }
}
