//! Synthetic announcement generation.
//!
//! Each family's records are sampled year by year from the component trends
//! in [`crate::family`]; a latent performance law then assigns every system
//! its "true" SPECint rate:
//!
//! * a dominant, slightly sub-linear clock term (`speed^0.9` — the paper's
//!   importance analysis finds processor speed dominant at 0.659/0.915),
//! * logarithmic memory-frequency, L2-, and L3-capacity terms,
//! * a small memory-size term,
//! * sub-linear socket scaling for the SMP rate runs (`chips^0.85`),
//! * SMT and bus bonuses,
//! * log-normal market noise (motherboards, BIOS, compilers — everything
//!   the 32 parameters don't capture), plus a small shared per-year
//!   adjustment representing compiler-generation effects.
//!
//! The law is *hidden* from the models — they only ever see the 32
//! parameters and the rating — and is mildly nonlinear, so neural networks
//! can over-fit a single year's data while linear regression extrapolates
//! into the next year more gracefully, which is precisely the behaviour the
//! paper reports (§4.3).

use crate::family::ProcessorFamily;
use crate::rating::synthesize_structured_ratios;
use crate::schema::{Announcement, DiskType};
use linalg::dist::{child_seed, sample_normal, seeded_rng};
use rand::rngs::StdRng;
use rand::Rng;

/// Latent performance law. Produces the noise-free rate for a record.
fn latent_rate(a: &Announcement, family: ProcessorFamily) -> f64 {
    // Family-specific base efficiency (per-clock IPC differences).
    let base = match family {
        ProcessorFamily::Xeon => 9.2,
        ProcessorFamily::Pentium4 => 8.2,
        ProcessorFamily::PentiumD => 8.8,
        _ => 11.0, // K8 Opteron had better per-clock SPECint
    };
    let clock = (a.processor_speed_mhz / 1000.0).powf(0.9);
    let mem_f = 1.0 + 0.10 * (a.memory_freq_mhz / 400.0).ln();
    let l2_f = 1.0 + 0.055 * ((a.l2_kb as f64 / 1024.0).ln() / std::f64::consts::LN_2);
    let l3_f = if a.l3_kb > 0 {
        1.0 + 0.035 * ((a.l3_kb as f64 / 1024.0).ln() / std::f64::consts::LN_2).max(0.5)
    } else {
        1.0
    };
    let mem_sz = 1.0 + 0.02 * (a.memory_gb / 4.0).ln().max(-1.0);
    let bus_f = 1.0 + 0.04 * (a.bus_frequency_mhz / 800.0).ln();
    let smt_f = if a.smt { 1.03 } else { 1.0 };
    // Rate runs scale with sockets, sub-linearly (memory contention); the
    // scaling exponent improves with memory/interconnect speed, so big
    // SMPs spread more — *predictably* — than single-socket systems
    // (paper §4.1: range grows 1.40 -> 1.58 -> 1.70 with socket count).
    let scale_exp =
        0.82 + 0.06 * (a.memory_freq_mhz / 400.0).ln() + 0.02 * (a.bus_frequency_mhz / 800.0).ln();
    let chips_f = (a.total_chips as f64).powf(scale_exp.clamp(0.6, 1.0));
    base * clock * mem_f * l2_f * l3_f * mem_sz * bus_f * smt_f * chips_f
}

/// Per-record jitter on the socket-scaling exponent: interconnect topology
/// and placement make big SMPs scale less predictably, widening their
/// rating spread with chip count (paper: range 1.40 -> 1.58 -> 1.70 -> 1.68
/// across 1/2/4/8 sockets).
fn scaling_jitter(chips: u32, rng: &mut StdRng) -> f64 {
    if chips <= 1 {
        return 1.0;
    }
    let eps = sample_normal(rng, 0.0, 0.015);
    ((chips as f64).ln() * eps).exp()
}

/// Per-family log-normal noise level. SMPs are noisier (interconnect,
/// placement); Pentium 4's long history adds compiler-era spread.
fn noise_sigma(family: ProcessorFamily) -> f64 {
    match family {
        ProcessorFamily::Opteron8 => 0.026,
        ProcessorFamily::Opteron4 => 0.024,
        ProcessorFamily::Opteron2 => 0.020,
        ProcessorFamily::Pentium4 => 0.020,
        _ => 0.015,
    }
}

/// How records distribute over the family's active years: later years carry
/// more announcements (the database grew quadratically as more vendors
/// published results).
fn year_weights(y0: u32, y1: u32) -> Vec<(u32, f64)> {
    let years: Vec<u32> = (y0..=y1).collect();
    if years.len() == 2 {
        // Short-history families (Pentium D) publish almost evenly across
        // their two years.
        return vec![(years[0], 0.45), (years[1], 0.55)];
    }
    let w = |y: u32| ((y - y0 + 1) as f64).powi(2);
    let total: f64 = years.iter().map(|&y| w(y)).sum();
    years.iter().map(|&y| (y, w(y) / total)).collect()
}

fn pick<'a, T>(rng: &mut StdRng, xs: &'a [T]) -> &'a T {
    &xs[rng.random_range(0..xs.len())]
}

/// Generate one record for `family` in `year`.
fn generate_record(
    family: ProcessorFamily,
    year: u32,
    year_adjust: f64,
    rng: &mut StdRng,
) -> Announcement {
    let (clock_lo, clock_hi) = family.clock_range_mhz(year);
    // Clock grid: products shipped on 100/200 MHz steps.
    let steps = ((clock_hi - clock_lo) / 100.0).max(1.0) as u32;
    let processor_speed_mhz = clock_lo + 100.0 * rng.random_range(0..=steps) as f64;

    let l2_kb = *pick(rng, family.l2_options_kb(year));
    let l3_kb = *pick(rng, family.l3_options_kb());
    let memory_freq_mhz = *pick(rng, family.mem_freq_options(year));
    let bus_frequency_mhz = *pick(rng, family.bus_options(year));
    let (l1i_kb, l1d_kb) = family.l1_kb();
    let chips = family.chips();
    let cores_per_chip = family.cores_per_chip();
    let smt = family.supports_smt() && rng.random::<f64>() < 0.6;

    let mem_options: &[f64] = if year < 2003 {
        &[1.0, 2.0, 4.0]
    } else if year < 2005 {
        &[2.0, 4.0, 8.0]
    } else {
        &[2.0, 4.0, 8.0, 16.0]
    };
    let memory_gb = *pick(rng, mem_options) * (chips as f64).max(1.0);

    let disk_gb = *pick(
        rng,
        if year < 2003 {
            &[18.0, 36.0, 73.0]
        } else {
            &[73.0, 146.0, 300.0] as &[f64]
        },
    );
    let disk_rpm = *pick(rng, &[7200.0, 10000.0, 15000.0]);
    let disk_type = *pick(
        rng,
        if year < 2004 {
            &[DiskType::Scsi, DiskType::Ide]
        } else {
            &[DiskType::Scsi, DiskType::Sata, DiskType::Sata] as &[DiskType]
        },
    );

    let company = (*pick(rng, family.company_pool())).to_string();
    let model_step = (processor_speed_mhz / 100.0).round() as u32;
    // Real SPEC model fields carry stepping/revision suffixes, making them
    // high-cardinality name fields that Clementine omits for regression.
    let stepping = ["A", "B", "C", "E", "F"][rng.random_range(0..5usize)];
    let processor_model = match family {
        ProcessorFamily::Xeon => format!("Xeon {model_step}00 {stepping}-step"),
        ProcessorFamily::Pentium4 => format!("Pentium 4 {model_step}00 {stepping}-step"),
        ProcessorFamily::PentiumD => format!("Pentium D 9{} {stepping}-step", model_step % 10),
        _ => format!(
            "Opteron {} {stepping}-step",
            140 + (model_step % 10) * 2 + (chips.ilog2()) * 100
        ),
    };
    let system_name = format!(
        "{} {}{}",
        company,
        ["ProServ", "PowerStation", "Workline", "Summit"][rng.random_range(0..4usize)],
        rng.random_range(100..999)
    );

    let mut a = Announcement {
        company,
        system_name,
        processor_model,
        bus_frequency_mhz,
        processor_speed_mhz,
        fpu: true,
        total_cores: chips * cores_per_chip,
        total_chips: chips,
        cores_per_chip,
        smt,
        parallel: chips * cores_per_chip > 1,
        l1i_kb,
        l1d_kb,
        l1_per_core: true,
        l2_kb,
        l2_on_chip: year >= 2000,
        l2_shared: cores_per_chip > 1 && matches!(family, ProcessorFamily::PentiumD),
        l2_unified: true,
        l3_kb,
        l3_on_chip: l3_kb > 0,
        l3_per_core: false,
        l3_shared: l3_kb > 0,
        l3_unified: l3_kb > 0,
        l4_kb: 0,
        l4_shared_count: 0,
        l4_on_chip: false,
        memory_gb,
        memory_freq_mhz,
        disk_gb,
        disk_rpm,
        disk_type,
        extra_components: rng.random_range(0..4),
        year,
        quarter: rng.random_range(1..=4),
        specint_rate: 0.0,
        app_ratios: Vec::new(),
        specfp_rate: 0.0,
        fp_app_ratios: Vec::new(),
    };

    let noise = sample_normal(rng, 0.0, noise_sigma(family)).exp();
    let jitter = scaling_jitter(a.total_chips, rng);
    let rate = latent_rate(&a, family) * noise * jitter * year_adjust;
    a.specint_rate = (rate * 10.0).round() / 10.0; // SPEC publishes one decimal
                                                   // Per-application ratios respond to the system's traits (normalized
                                                   // component deviations), so individual applications are predictable
                                                   // from the 32 parameters — the paper's omitted per-app result.
    let traits = [
        (a.processor_speed_mhz - 2500.0) / 1000.0,
        (a.memory_freq_mhz - 400.0) / 200.0,
        ((a.l2_kb as f64 / 1024.0).ln() / std::f64::consts::LN_2).clamp(-2.0, 2.0),
        (a.total_chips as f64).ln(),
    ];
    a.app_ratios = synthesize_structured_ratios(a.specint_rate.max(0.1), 12, &traits, 0.025, rng);
    // SPECfp leans harder on memory bandwidth and lighter on clock: scale
    // the int rate by a memory-tilted factor plus its own noise.
    let fp_tilt = (1.0 + 0.08 * (a.memory_freq_mhz / 400.0).ln())
        * (a.processor_speed_mhz / 2500.0).powf(-0.15)
        * match family {
            ProcessorFamily::Xeon | ProcessorFamily::Pentium4 | ProcessorFamily::PentiumD => 1.02,
            _ => 1.10, // K8's integrated memory controller shines on fp
        };
    let fp_noise = sample_normal(rng, 0.0, noise_sigma(family)).exp();
    a.specfp_rate = ((a.specint_rate * fp_tilt * fp_noise) * 10.0).round() / 10.0;
    a.fp_app_ratios = synthesize_structured_ratios(a.specfp_rate.max(0.1), 14, &traits, 0.030, rng);
    a
}

/// Generate the full synthetic history of one family.
///
/// `seed` controls the whole population; the record count matches the
/// family's §4.1 target exactly, spread over its active years with more
/// records in later years.
pub fn generate_family(family: ProcessorFamily, seed: u64) -> Vec<Announcement> {
    let stats = family.paper_stats();
    let (y0, y1) = family.year_span();
    let weights = year_weights(y0, y1);
    let mut rng = seeded_rng(child_seed(
        seed,
        family.chips() as u64 * 131 + family.name().len() as u64,
    ));

    // Integer record counts per year that sum exactly to the target, with
    // every active year represented at least once.
    let mut counts: Vec<(u32, usize)> = weights
        .iter()
        .map(|&(y, w)| (y, ((w * stats.records as f64).floor() as usize).max(1)))
        .collect();
    let mut assigned: usize = counts.iter().map(|&(_, c)| c).sum();
    let mut i = counts.len() - 1;
    while assigned < stats.records {
        counts[i].1 += 1;
        assigned += 1;
        i = if i == 0 { counts.len() - 1 } else { i - 1 };
    }
    while assigned > stats.records {
        // `counts` has one entry per year in the family's span, which is
        // never empty; if that ever changed, stop trimming rather than
        // looping forever.
        let Some(max) = counts
            .iter()
            .enumerate()
            .max_by_key(|(_, &(_, c))| c)
            .map(|(i, _)| i)
        else {
            break;
        };
        counts[max].1 -= 1;
        assigned -= 1;
    }

    let mut out = Vec::with_capacity(stats.records);
    for &(year, n) in &counts {
        // Shared per-year adjustment (compiler generation, firmware).
        let year_adjust = sample_normal(&mut rng, 0.0, 0.01).exp();
        for _ in 0..n {
            out.push(generate_record(family, year, year_adjust, &mut rng));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use linalg::stats::{range_ratio, variation};

    #[test]
    fn record_counts_match_paper_exactly() {
        for f in ProcessorFamily::ALL {
            let recs = generate_family(f, 42);
            assert_eq!(recs.len(), f.paper_stats().records, "{}", f.name());
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate_family(ProcessorFamily::Opteron2, 7);
        let b = generate_family(ProcessorFamily::Opteron2, 7);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate_family(ProcessorFamily::Xeon, 1);
        let b = generate_family(ProcessorFamily::Xeon, 2);
        assert_ne!(a, b);
    }

    #[test]
    fn ranges_are_in_paper_ballpark() {
        // The synthetic population should land near the published
        // range/variation (within a tolerant factor — this is a substrate,
        // not a fit).
        for f in ProcessorFamily::ALL {
            let recs = generate_family(f, 42);
            let rates: Vec<f64> = recs.iter().map(|r| r.specint_rate).collect();
            let r = range_ratio(&rates);
            let v = variation(&rates);
            let target = f.paper_stats();
            assert!(
                r > 1.0 + (target.range - 1.0) * 0.4 && r < 1.0 + (target.range - 1.0) * 2.5,
                "{}: range {r:.2} vs paper {:.2}",
                f.name(),
                target.range
            );
            assert!(
                v > target.variation * 0.35 && v < target.variation * 3.0,
                "{}: variation {v:.3} vs paper {:.3}",
                f.name(),
                target.variation
            );
        }
    }

    #[test]
    fn p4_range_is_widest_among_singles() {
        let range = |f: ProcessorFamily| {
            let rates: Vec<f64> = generate_family(f, 42)
                .iter()
                .map(|r| r.specint_rate)
                .collect();
            range_ratio(&rates)
        };
        let p4 = range(ProcessorFamily::Pentium4);
        assert!(p4 > range(ProcessorFamily::Xeon));
        assert!(p4 > range(ProcessorFamily::PentiumD));
        assert!(p4 > range(ProcessorFamily::Opteron));
    }

    #[test]
    fn every_year_in_span_is_populated() {
        for f in ProcessorFamily::ALL {
            let recs = generate_family(f, 42);
            let (y0, y1) = f.year_span();
            for y in y0..=y1 {
                assert!(
                    recs.iter().any(|r| r.year == y),
                    "{} missing year {y}",
                    f.name()
                );
            }
            assert!(recs.iter().all(|r| (y0..=y1).contains(&r.year)));
        }
    }

    #[test]
    fn later_years_have_more_records() {
        let recs = generate_family(ProcessorFamily::Opteron, 42);
        let count = |y: u32| recs.iter().filter(|r| r.year == y).count();
        assert!(count(2006) > count(2003));
    }

    #[test]
    fn smp_rates_scale_with_sockets() {
        let mean_rate = |f: ProcessorFamily| {
            let recs = generate_family(f, 42);
            let rates: Vec<f64> = recs
                .iter()
                .filter(|r| r.year == 2006)
                .map(|r| r.specint_rate)
                .collect();
            linalg::stats::mean(&rates)
        };
        let r1 = mean_rate(ProcessorFamily::Opteron);
        let r2 = mean_rate(ProcessorFamily::Opteron2);
        let r8 = mean_rate(ProcessorFamily::Opteron8);
        assert!(
            r2 > r1 * 1.5,
            "2-socket rate should approach 2x: {r1} -> {r2}"
        );
        assert!(
            r8 > r2 * 2.5,
            "8-socket rate should be much larger: {r2} -> {r8}"
        );
    }

    #[test]
    fn ratings_back_out_from_ratios() {
        let recs = generate_family(ProcessorFamily::Xeon, 42);
        for r in recs.iter().take(20) {
            let g = crate::rating::rating_from_ratios(&r.app_ratios);
            assert!((g - r.specint_rate).abs() / r.specint_rate < 1e-9);
        }
    }

    #[test]
    fn fp_rates_are_generated_and_consistent() {
        let recs = generate_family(ProcessorFamily::Opteron, 42);
        for r in recs.iter().take(25) {
            assert!(r.specfp_rate > 0.0);
            assert_eq!(r.fp_app_ratios.len(), 14);
            let g = crate::rating::rating_from_ratios(&r.fp_app_ratios);
            assert!((g - r.specfp_rate).abs() / r.specfp_rate < 1e-9);
        }
    }

    #[test]
    fn opteron_fp_advantage_over_netburst() {
        // K8's integrated memory controller gives it a larger fp/int ratio
        // than the NetBurst families.
        let mean_ratio = |f: ProcessorFamily| {
            let recs = generate_family(f, 42);
            let v: Vec<f64> = recs
                .iter()
                .map(|r| r.specfp_rate / r.specint_rate)
                .collect();
            linalg::stats::mean(&v)
        };
        assert!(mean_ratio(ProcessorFamily::Opteron) > mean_ratio(ProcessorFamily::Xeon));
    }

    #[test]
    fn clocks_trend_upward_across_years() {
        let recs = generate_family(ProcessorFamily::Pentium4, 42);
        let mean_clock = |y: u32| {
            let v: Vec<f64> = recs
                .iter()
                .filter(|r| r.year == y)
                .map(|r| r.processor_speed_mhz)
                .collect();
            linalg::stats::mean(&v)
        };
        assert!(mean_clock(2006) > mean_clock(2001) * 1.5);
    }
}
