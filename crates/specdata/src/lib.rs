//! `specdata` — synthetic SPEC CPU2000 announcement substrate.
//!
//! The paper's chronological study (§4.3) trains on the SPEC results
//! database: published system announcements, each describing 32 system
//! parameters plus SPECint2000/SPECfp2000 ratings. That database cannot be
//! shipped, so this crate generates a statistically faithful synthetic
//! counterpart:
//!
//! * [`schema`] — the 32-parameter announcement record.
//! * [`family`] — the seven processor families the paper analyzes (Xeon,
//!   Pentium 4, Pentium D, Opteron ×1/×2/×4/×8) with their year-indexed
//!   component trends and the record-count/range/variation targets reported
//!   in §4.1 (e.g. Opteron: 138 records, 1.40× range, 0.08 variation).
//! * [`generator`] — samples announcements per family and year from the
//!   trends, assigns each a latent "true performance" (dominant linear terms
//!   in clock and memory, mild interactions, market noise), and emits
//!   records.
//! * [`rating`] — SPEC's arithmetic: per-application normalized ratios whose
//!   geometric mean is the rating.
//! * [`dataset`] — year splits and summary statistics used by the
//!   chronological pipeline.

pub(crate) mod dataset;
pub mod family;
pub(crate) mod generator;
pub mod rating;
pub mod schema;

pub use dataset::AnnouncementSet;
pub use family::ProcessorFamily;
pub use generator::generate_family;
pub use schema::{Announcement, DiskType};
