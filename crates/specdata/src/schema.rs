//! The 32-parameter SPEC announcement record.
//!
//! §4.1: "Each announcement provides the configuration of 32 system
//! parameters: company, system name, processor model, bus frequency,
//! processor speed, floating point unit, total cores (total chips, cores
//! per chip), SMT, Parallel, L1 instruction and data cache size (per
//! core/chip), L2 data cache size (on/off chip, shared/nonshared,
//! unified/nonunified), L3 cache size (…), L4 cache size (# shared, on/off
//! chip), memory size and frequency, hard drive size, speed and type, and
//! extra components."

use serde::{Deserialize, Serialize};

/// Hard-drive interface type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DiskType {
    /// Parallel SCSI.
    Scsi,
    /// Serial ATA.
    Sata,
    /// Parallel ATA / IDE.
    Ide,
}

impl DiskType {
    /// Stable numeric code.
    pub fn code(self) -> usize {
        match self {
            DiskType::Scsi => 0,
            DiskType::Sata => 1,
            DiskType::Ide => 2,
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            DiskType::Scsi => "SCSI",
            DiskType::Sata => "SATA",
            DiskType::Ide => "IDE",
        }
    }
}

/// One published SPEC result: 32 configuration parameters plus the
/// announcement date and the measured outputs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Announcement {
    // -- identification (parameters 1-3) --
    /// Manufacturer (categorical).
    pub company: String,
    /// Marketing system name (categorical, high cardinality).
    pub system_name: String,
    /// Processor model string (categorical).
    pub processor_model: String,

    // -- processor (4-6) --
    /// Front-side bus frequency, MHz.
    pub bus_frequency_mhz: f64,
    /// Processor clock, MHz.
    pub processor_speed_mhz: f64,
    /// Hardware floating-point unit present.
    pub fpu: bool,

    // -- topology (7-11) --
    /// Total cores in the system.
    pub total_cores: u32,
    /// Total chips (sockets).
    pub total_chips: u32,
    /// Cores per chip.
    pub cores_per_chip: u32,
    /// Simultaneous multithreading enabled.
    pub smt: bool,
    /// Result is from the "rate" (parallel) run.
    pub parallel: bool,

    // -- L1 (12-14) --
    /// L1 instruction cache, KB per core.
    pub l1i_kb: u32,
    /// L1 data cache, KB per core.
    pub l1d_kb: u32,
    /// L1 is per-core (vs. per-chip shared).
    pub l1_per_core: bool,

    // -- L2 (15-18) --
    /// L2 capacity, KB.
    pub l2_kb: u32,
    /// L2 on the processor die.
    pub l2_on_chip: bool,
    /// L2 shared between cores.
    pub l2_shared: bool,
    /// L2 unified (instructions + data).
    pub l2_unified: bool,

    // -- L3 (19-23) --
    /// L3 capacity, KB (0 = absent).
    pub l3_kb: u32,
    /// L3 on die.
    pub l3_on_chip: bool,
    /// L3 per core (vs. per chip).
    pub l3_per_core: bool,
    /// L3 shared.
    pub l3_shared: bool,
    /// L3 unified.
    pub l3_unified: bool,

    // -- L4 (24-26) --
    /// L4 capacity, KB (0 = absent).
    pub l4_kb: u32,
    /// Number of chips sharing the L4.
    pub l4_shared_count: u32,
    /// L4 on die.
    pub l4_on_chip: bool,

    // -- memory (27-28) --
    /// Main memory, GB.
    pub memory_gb: f64,
    /// Memory frequency, MHz.
    pub memory_freq_mhz: f64,

    // -- disk (29-31) --
    /// Hard-drive capacity, GB.
    pub disk_gb: f64,
    /// Spindle speed, RPM.
    pub disk_rpm: f64,
    /// Disk interface.
    pub disk_type: DiskType,

    // -- misc (32) --
    /// Count of "extra components" listed (RAID cards, extra NICs, …).
    pub extra_components: u32,

    // -- outputs (not predictors) --
    /// Announcement year.
    pub year: u32,
    /// Announcement quarter (1-4).
    pub quarter: u32,
    /// SPECint2000 rate — the primary prediction target.
    pub specint_rate: f64,
    /// Per-application normalized integer ratios backing the rating
    /// (12 entries).
    pub app_ratios: Vec<f64>,
    /// SPECfp2000 rate (the paper mentions both rates; §4.3 presents int).
    pub specfp_rate: f64,
    /// Per-application floating-point ratios (14 entries).
    pub fp_app_ratios: Vec<f64>,
}

impl Announcement {
    /// Names of the numeric/flag predictor columns produced by
    /// [`Announcement::numeric_features`], in order.
    pub fn numeric_feature_names() -> Vec<&'static str> {
        vec![
            "bus_frequency_mhz",
            "processor_speed_mhz",
            "fpu",
            "total_cores",
            "total_chips",
            "cores_per_chip",
            "smt",
            "parallel",
            "l1i_kb",
            "l1d_kb",
            "l1_per_core",
            "l2_kb",
            "l2_on_chip",
            "l2_shared",
            "l2_unified",
            "l3_kb",
            "l3_on_chip",
            "l3_per_core",
            "l3_shared",
            "l3_unified",
            "l4_kb",
            "l4_shared_count",
            "l4_on_chip",
            "memory_gb",
            "memory_freq_mhz",
            "disk_gb",
            "disk_rpm",
            "disk_type",
            "extra_components",
        ]
    }

    /// Numeric encoding of every predictor that admits one (flags become
    /// 0/1, disk type its code). The three free-text identifier columns
    /// (company, system name, processor model) are what Clementine "omits"
    /// for linear regression (§3.4); they are exposed separately via
    /// [`Announcement::categorical_features`].
    pub fn numeric_features(&self) -> Vec<f64> {
        let b = |x: bool| if x { 1.0 } else { 0.0 };
        vec![
            self.bus_frequency_mhz,
            self.processor_speed_mhz,
            b(self.fpu),
            self.total_cores as f64,
            self.total_chips as f64,
            self.cores_per_chip as f64,
            b(self.smt),
            b(self.parallel),
            self.l1i_kb as f64,
            self.l1d_kb as f64,
            b(self.l1_per_core),
            self.l2_kb as f64,
            b(self.l2_on_chip),
            b(self.l2_shared),
            b(self.l2_unified),
            self.l3_kb as f64,
            b(self.l3_on_chip),
            b(self.l3_per_core),
            b(self.l3_shared),
            b(self.l3_unified),
            self.l4_kb as f64,
            self.l4_shared_count as f64,
            b(self.l4_on_chip),
            self.memory_gb,
            self.memory_freq_mhz,
            self.disk_gb,
            self.disk_rpm,
            self.disk_type.code() as f64,
            self.extra_components as f64,
        ]
    }

    /// The categorical (string) predictors, used only by models that accept
    /// non-numeric inputs (the neural networks).
    pub fn categorical_features(&self) -> Vec<&str> {
        vec![&self.company, &self.system_name, &self.processor_model]
    }

    /// Names for [`Announcement::categorical_features`].
    pub fn categorical_feature_names() -> Vec<&'static str> {
        vec!["company", "system_name", "processor_model"]
    }

    /// Total declared parameter count: 29 numeric/flag + 3 categorical = 32,
    /// matching the paper.
    pub const PARAMETER_COUNT: usize = 32;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Announcement {
        Announcement {
            company: "AMD".into(),
            system_name: "TestServer 100".into(),
            processor_model: "Opteron 250".into(),
            bus_frequency_mhz: 800.0,
            processor_speed_mhz: 2400.0,
            fpu: true,
            total_cores: 2,
            total_chips: 2,
            cores_per_chip: 1,
            smt: false,
            parallel: true,
            l1i_kb: 64,
            l1d_kb: 64,
            l1_per_core: true,
            l2_kb: 1024,
            l2_on_chip: true,
            l2_shared: false,
            l2_unified: true,
            l3_kb: 0,
            l3_on_chip: false,
            l3_per_core: false,
            l3_shared: false,
            l3_unified: false,
            l4_kb: 0,
            l4_shared_count: 0,
            l4_on_chip: false,
            memory_gb: 4.0,
            memory_freq_mhz: 400.0,
            disk_gb: 73.0,
            disk_rpm: 10000.0,
            disk_type: DiskType::Scsi,
            extra_components: 1,
            year: 2005,
            quarter: 2,
            specint_rate: 25.0,
            app_ratios: vec![25.0; 12],
            specfp_rate: 27.0,
            fp_app_ratios: vec![27.0; 14],
        }
    }

    #[test]
    fn numeric_features_align_with_names() {
        let a = sample();
        assert_eq!(
            a.numeric_features().len(),
            Announcement::numeric_feature_names().len()
        );
    }

    #[test]
    fn parameter_count_is_32() {
        assert_eq!(
            Announcement::numeric_feature_names().len()
                + Announcement::categorical_feature_names().len(),
            Announcement::PARAMETER_COUNT
        );
    }

    #[test]
    fn flags_encode_as_01() {
        let a = sample();
        let f = a.numeric_features();
        let names = Announcement::numeric_feature_names();
        let idx = names.iter().position(|&n| n == "fpu").unwrap();
        assert_eq!(f[idx], 1.0);
        let idx = names.iter().position(|&n| n == "smt").unwrap();
        assert_eq!(f[idx], 0.0);
    }

    #[test]
    fn disk_type_codes_distinct() {
        let codes: std::collections::HashSet<_> = [DiskType::Scsi, DiskType::Sata, DiskType::Ide]
            .iter()
            .map(|d| d.code())
            .collect();
        assert_eq!(codes.len(), 3);
    }
}
