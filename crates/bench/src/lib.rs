//! Shared plumbing for the reproduction harnesses (`repro_*` binaries) and
//! the Criterion benchmarks.
//!
//! Every harness accepts a common `--scale` knob so the paper's experiments
//! can be regenerated at full fidelity (hours of simulation) or smoke-tested
//! in seconds:
//!
//! * `--scale full`   — the paper's setup: all 4608 configurations,
//!   100 000-instruction intervals.
//! * `--scale medium` — every 4th configuration (1152), 60 000 instructions.
//! * `--scale quick`  — every 16th configuration (288), 30 000 instructions
//!   (default for smoke runs).

use cpusim::runner::SimOptions;
use cpusim::DesignSpace;

/// Experiment scale presets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Paper-fidelity: full lattice, long intervals.
    Full,
    /// Quarter lattice, medium intervals.
    Medium,
    /// Sixteenth lattice, short intervals.
    Quick,
}

impl Scale {
    /// Parse from a CLI string.
    pub fn parse(s: &str) -> Option<Scale> {
        match s {
            "full" => Some(Scale::Full),
            "medium" => Some(Scale::Medium),
            "quick" => Some(Scale::Quick),
            _ => None,
        }
    }

    /// The design space at this scale.
    pub fn space(self) -> DesignSpace {
        let full = DesignSpace::table1();
        let step = match self {
            Scale::Full => 1,
            Scale::Medium => 4,
            Scale::Quick => 16,
        };
        if step == 1 {
            full
        } else {
            DesignSpace::from_configs(full.configs().iter().copied().step_by(step).collect())
        }
    }

    /// Simulator options at this scale.
    pub fn sim_options(self) -> SimOptions {
        let instructions = match self {
            Scale::Full => 100_000,
            Scale::Medium => 60_000,
            Scale::Quick => 30_000,
        };
        SimOptions { instructions, ..Default::default() }
    }
}

/// Parse `--scale <value>` (and `--seed <n>`) from argv; defaults to
/// `Quick` so casual runs stay fast. Returns (scale, seed, leftover args).
pub fn parse_common_args() -> (Scale, u64, Vec<String>) {
    let mut scale = Scale::Quick;
    let mut seed = 42u64;
    let mut rest = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--scale" => {
                let v = args.next().expect("--scale needs a value");
                scale = Scale::parse(&v)
                    .unwrap_or_else(|| panic!("unknown scale '{v}' (full|medium|quick)"));
            }
            "--seed" => {
                seed = args
                    .next()
                    .expect("--seed needs a value")
                    .parse()
                    .expect("--seed must be an integer");
            }
            other => rest.push(other.to_string()),
        }
    }
    (scale, seed, rest)
}

/// Banner header for every harness.
pub fn banner(title: &str, scale: Scale) {
    println!("perfpredict reproduction — {title}");
    println!(
        "scale: {scale:?} (use --scale full for the paper-fidelity run)\n"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_parse() {
        assert_eq!(Scale::parse("full"), Some(Scale::Full));
        assert_eq!(Scale::parse("medium"), Some(Scale::Medium));
        assert_eq!(Scale::parse("quick"), Some(Scale::Quick));
        assert_eq!(Scale::parse("nope"), None);
    }

    #[test]
    fn space_sizes_scale_down() {
        assert_eq!(Scale::Full.space().len(), 4608);
        assert_eq!(Scale::Medium.space().len(), 1152);
        assert_eq!(Scale::Quick.space().len(), 288);
    }

    #[test]
    fn sim_options_scale_instructions() {
        assert!(Scale::Full.sim_options().instructions > Scale::Quick.sim_options().instructions);
    }
}
