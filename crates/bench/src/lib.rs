//! Shared plumbing for the reproduction harnesses (`repro_*` binaries) and
//! the Criterion benchmarks.
//!
//! Every harness accepts a common `--scale` knob so the paper's experiments
//! can be regenerated at full fidelity (hours of simulation) or smoke-tested
//! in seconds:
//!
//! * `--scale full`   — the paper's setup: all 4608 configurations,
//!   100 000-instruction intervals.
//! * `--scale medium` — every 4th configuration (1152), 60 000 instructions.
//! * `--scale quick`  — every 16th configuration (288), 30 000 instructions
//!   (default for smoke runs).
//!
//! Every harness also understands the observability flags: `--trace` for
//! verbose span logging on stderr, `--profile` for a span-tree hot-path
//! table, and `--metrics-out <path>` for a JSON-lines run manifest.
//! [`banner`] installs the telemetry run and returns a [`RunGuard`] that
//! prints a one-line wall-time/counter summary (with latency-histogram
//! tails) when the harness finishes.

use cpusim::runner::SimOptions;
use cpusim::DesignSpace;
use telemetry::{ConsoleLevel, TelemetryConfig};

/// Experiment scale presets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Paper-fidelity: full lattice, long intervals.
    Full,
    /// Quarter lattice, medium intervals.
    Medium,
    /// Sixteenth lattice, short intervals.
    Quick,
}

impl Scale {
    /// Parse from a CLI string.
    pub fn parse(s: &str) -> Option<Scale> {
        match s {
            "full" => Some(Scale::Full),
            "medium" => Some(Scale::Medium),
            "quick" => Some(Scale::Quick),
            _ => None,
        }
    }

    /// The design space at this scale.
    pub fn space(self) -> DesignSpace {
        let full = DesignSpace::table1();
        let step = match self {
            Scale::Full => 1,
            Scale::Medium => 4,
            Scale::Quick => 16,
        };
        if step == 1 {
            full
        } else {
            DesignSpace::from_configs(full.configs().iter().copied().step_by(step).collect())
        }
    }

    /// Simulator options at this scale.
    pub fn sim_options(self) -> SimOptions {
        let instructions = match self {
            Scale::Full => 100_000,
            Scale::Medium => 60_000,
            Scale::Quick => 30_000,
        };
        SimOptions {
            instructions,
            ..Default::default()
        }
    }
}

/// Parse `--scale <value>` (and `--seed <n>`) from argv; defaults to
/// `Quick` so casual runs stay fast. Returns (scale, seed, leftover args).
/// The observability flags (`--trace`, `--metrics-out <path>`) are consumed
/// here too so they never leak into the leftovers; [`banner`] re-reads them
/// from argv when installing telemetry.
pub fn parse_common_args() -> (Scale, u64, Vec<String>) {
    let mut scale = Scale::Quick;
    let mut seed = 42u64;
    let mut rest = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--scale" => {
                let v = args.next().expect("--scale needs a value");
                scale = Scale::parse(&v)
                    .unwrap_or_else(|| panic!("unknown scale '{v}' (full|medium|quick)"));
            }
            "--seed" => {
                seed = args
                    .next()
                    .expect("--seed needs a value")
                    .parse()
                    .expect("--seed must be an integer");
            }
            "--trace" | "--profile" => {}
            "--metrics-out" => {
                let _ = args.next().expect("--metrics-out needs a path");
            }
            other => rest.push(other.to_string()),
        }
    }
    (scale, seed, rest)
}

/// Ends a harness run: on drop, tears the telemetry run down and prints
/// the one-line wall-time/counter summary.
#[must_use = "bind the guard so the run summary prints when main ends"]
pub struct RunGuard {
    handle: Option<telemetry::RunHandle>,
}

impl Drop for RunGuard {
    fn drop(&mut self) {
        if let Some(handle) = self.handle.take() {
            let summary = handle.finish();
            println!("\n{}", summary.one_line());
            if !summary.profile.is_empty() {
                print!("{}", telemetry::profile::render_table(&summary.profile));
            }
        }
    }
}

/// Banner header for every harness. Also installs the telemetry run for
/// the process — console verbosity from `PERFPREDICT_LOG` or `--trace`, a
/// JSON-lines manifest when `--metrics-out <path>` is given — and returns
/// the [`RunGuard`] that finishes it.
pub fn banner(title: &str, scale: Scale) -> RunGuard {
    println!("perfpredict reproduction — {title}");
    println!("scale: {scale:?} (use --scale full for the paper-fidelity run)\n");

    let label = std::env::current_exe()
        .ok()
        .and_then(|p| p.file_name().map(|n| n.to_string_lossy().into_owned()))
        .unwrap_or_else(|| "bench".to_string());
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = TelemetryConfig::new(label)
        .meta("title", title)
        .meta("scale", format!("{scale:?}"))
        .meta("args", args.join(" "));
    if args.iter().any(|a| a == "--trace") {
        cfg = cfg.console(ConsoleLevel::Debug);
    }
    if args.iter().any(|a| a == "--profile") {
        cfg = cfg.profile(true);
    }
    if let Some(i) = args.iter().position(|a| a == "--metrics-out") {
        if let Some(path) = args.get(i + 1) {
            cfg = cfg.jsonl(path);
        }
    }
    let handle = match telemetry::install(cfg) {
        Ok(h) => Some(h),
        Err(e) => {
            eprintln!("cannot open metrics file: {e}");
            std::process::exit(2);
        }
    };
    RunGuard { handle }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_parse() {
        assert_eq!(Scale::parse("full"), Some(Scale::Full));
        assert_eq!(Scale::parse("medium"), Some(Scale::Medium));
        assert_eq!(Scale::parse("quick"), Some(Scale::Quick));
        assert_eq!(Scale::parse("nope"), None);
    }

    #[test]
    fn space_sizes_scale_down() {
        assert_eq!(Scale::Full.space().len(), 4608);
        assert_eq!(Scale::Medium.space().len(), 1152);
        assert_eq!(Scale::Quick.space().len(), 288);
    }

    #[test]
    fn sim_options_scale_instructions() {
        assert!(Scale::Full.sim_options().instructions > Scale::Quick.sim_options().instructions);
    }
}
