//! Ablation of the SimPoint substrate (§4.1): how much does phase-aware
//! interval selection change the cycle counts the models are trained on,
//! compared to naively simulating the first interval?
//!
//! For each benchmark: CPI of (a) a long reference run, (b) the first
//! interval only, (c) the SimPoint-weighted representative intervals.

use bench::{banner, parse_common_args};
use cpusim::core::Core;
use cpusim::simpoint::analyze;
use cpusim::trace::{ReplaySource, TraceGenerator};
use cpusim::{Benchmark, CpuConfig};
use dse::report::{f, render_table};

/// CPI of interval `idx`, measured after warming the microarchitectural
/// state on the *preceding* interval (standard SimPoint warm-up practice);
/// interval 0 warms on a replay of itself.
fn cpi_of_interval(b: Benchmark, seed: u64, idx: usize, len: u64, cfg: CpuConfig) -> f64 {
    let mut core = Core::new(cfg);
    let s = if idx == 0 {
        let mut gen = TraceGenerator::for_benchmark(b, seed);
        let trace = gen.take_vec(len as usize);
        let mut src = ReplaySource::new(&trace, 1);
        core.run_with_warmup(&mut src, len, len)
    } else {
        let mut gen = TraceGenerator::for_benchmark(b, seed);
        for _ in 0..((idx as u64 - 1) * len) {
            let _ = gen.next_inst();
        }
        core.run_with_warmup(&mut gen, len, len)
    };
    s.cycles as f64 / s.instructions as f64
}

fn main() {
    let (scale, seed, _) = parse_common_args();
    let _run = banner(
        "ablation: SimPoint interval selection vs first-interval",
        scale,
    );

    let n_intervals = 16;
    let interval_len = match scale {
        bench::Scale::Full => 20_000u64,
        bench::Scale::Medium => 10_000,
        bench::Scale::Quick => 5_000,
    };
    let cfg = CpuConfig::baseline();

    let mut rows = Vec::new();
    for b in Benchmark::PRESENTED {
        // Reference: the whole n_intervals * interval_len run, measured
        // after one interval of warm-up.
        let total = n_intervals as u64 * interval_len;
        let mut gen = TraceGenerator::for_benchmark(b, seed);
        let mut core = Core::new(cfg);
        let full = core.run_with_warmup(&mut gen, interval_len, total);
        let ref_cpi = full.cycles as f64 / full.instructions as f64;

        // First measured interval only.
        let first_cpi = cpi_of_interval(b, seed, 1, interval_len, cfg);

        // SimPoint-weighted.
        let analysis = analyze(b, seed, n_intervals, interval_len, 5);
        let mut sp_cpi = 0.0;
        for p in &analysis.points {
            sp_cpi += p.weight * cpi_of_interval(b, seed, p.interval, interval_len, cfg);
        }

        let err = |x: f64| 100.0 * (x - ref_cpi).abs() / ref_cpi;
        rows.push(vec![
            b.name().to_string(),
            f(ref_cpi, 3),
            f(first_cpi, 3),
            f(err(first_cpi), 1),
            f(sp_cpi, 3),
            f(err(sp_cpi), 1),
            analysis.k.to_string(),
        ]);
    }
    print!(
        "{}",
        render_table(
            &[
                "benchmark".into(),
                "ref CPI".into(),
                "first-interval CPI".into(),
                "err %".into(),
                "SimPoint CPI".into(),
                "err %".into(),
                "k".into(),
            ],
            &rows,
        )
    );
    println!(
        "\nSimPoint earns its keep when its error column beats the first-interval \
         column (phase-heterogeneous workloads like gcc/bzip2)."
    );
}
