//! Extension of §4.3: rolling-year chronological evaluation.
//!
//! The paper fixes the split at 2005 → 2006. This harness slides the
//! training year across each family's full history (train on year Y,
//! predict Y+1), showing that the LR-over-NN finding is stable over time
//! and how error shrinks as the database accumulates records.

use bench::{banner, parse_common_args};
use dse::chrono::{run_chronological, ChronoConfig};
use dse::report::{f, render_table};
use mlmodels::ModelKind;
use specdata::ProcessorFamily;

fn main() {
    let (scale, seed, _) = parse_common_args();
    let _run = banner(
        "§4.3 extension: rolling-year chronological evaluation",
        scale,
    );

    for fam in [ProcessorFamily::Xeon, ProcessorFamily::Opteron2] {
        let (y0, y1) = fam.year_span();
        println!("{} — train year Y, predict Y+1:", fam.name());
        let mut rows = Vec::new();
        for train_year in y0..y1 {
            // Skip splits whose training year is too thin to fit anything
            // (the early database years hold a handful of records).
            let probe = specdata::AnnouncementSet::generate(fam, seed);
            if probe.year(train_year).len() < 10 {
                continue;
            }
            let cfg = ChronoConfig {
                train_year,
                models: vec![
                    ModelKind::LrE,
                    ModelKind::LrS,
                    ModelKind::NnQ,
                    ModelKind::NnE,
                ],
                data_seed: seed,
                seed,
                estimate_errors: false,
                export_models: None,
            };
            let r = run_chronological(fam, &cfg);
            let err = |m: ModelKind| {
                r.points
                    .iter()
                    .find(|p| p.model == m)
                    .map(|p| f(p.error_mean, 2))
                    .unwrap_or_default()
            };
            rows.push(vec![
                format!("{train_year}->{}", train_year + 1),
                r.n_train.to_string(),
                r.n_test.to_string(),
                err(ModelKind::LrE),
                err(ModelKind::LrS),
                err(ModelKind::NnQ),
                err(ModelKind::NnE),
            ]);
        }
        print!(
            "{}",
            render_table(
                &[
                    "split".into(),
                    "n_train".into(),
                    "n_test".into(),
                    "LR-E %".into(),
                    "LR-S %".into(),
                    "NN-Q %".into(),
                    "NN-E %".into(),
                ],
                &rows,
            )
        );
        println!();
    }
}
