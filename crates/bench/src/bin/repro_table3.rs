//! Reproduces **Table 3** — "Average accuracy results from SPEC
//! simulations": the mean (over the five presented applications) of the
//! true error for LR-B, NN-E, NN-S, and the *select* method at 1–5 %
//! sampling.
//!
//! Paper values:
//! ```text
//!          1%    2%    3%    4%    5%
//! LR-B    4.20  4.00  3.82  3.80  3.80
//! NN-E    3.48  2.04  1.14  0.94  0.88
//! NN-S    5.94  3.18  2.22  1.16  1.50
//! Select  3.40  2.60  1.14  0.94  0.88
//! ```

use bench::{banner, parse_common_args};
use cpusim::Benchmark;
use dse::report::{f, render_table};
use dse::sampled::{run_sampled_dse, SampledConfig, SamplingStrategy};
use dse::selectbest::select_method_error;
use mlmodels::ModelKind;

fn main() {
    let (scale, seed, _) = parse_common_args();
    let _run = banner("Table 3: average sampled-DSE accuracy", scale);

    let rates = [0.01, 0.02, 0.03, 0.04, 0.05];
    let space = scale.space();
    let mut sim = scale.sim_options();
    sim.seed = seed;
    let cfg = SampledConfig {
        sampling_rates: rates.to_vec(),
        strategy: SamplingStrategy::Random,
        models: ModelKind::FIGURE2_ORDER.to_vec(),
        sim,
        seed,
        estimate_errors: true,
        export_models: None,
    };

    // Accumulate true errors per (model, rate) and the select method.
    let mut acc: std::collections::HashMap<(ModelKind, usize), Vec<f64>> = Default::default();
    let mut select_acc: Vec<Vec<f64>> = vec![Vec::new(); rates.len()];
    for b in Benchmark::PRESENTED {
        let run = run_sampled_dse(b, &space, &cfg, None);
        for (ri, &r) in rates.iter().enumerate() {
            for m in ModelKind::FIGURE2_ORDER {
                let p = run.point(m, r).expect("point");
                acc.entry((m, ri)).or_default().push(p.true_error);
            }
            select_acc[ri].push(select_method_error(&run, r).true_error);
        }
        eprintln!("  … {} done", b.name());
    }

    let paper: &[(&str, [f64; 5])] = &[
        ("LR-B", [4.2, 4.0, 3.82, 3.8, 3.8]),
        ("NN-E", [3.48, 2.04, 1.14, 0.94, 0.88]),
        ("NN-S", [5.94, 3.18, 2.22, 1.16, 1.5]),
        ("Select", [3.4, 2.6, 1.14, 0.94, 0.88]),
    ];

    let mut rows = Vec::new();
    for m in [ModelKind::LrB, ModelKind::NnE, ModelKind::NnS] {
        let mut row = vec![m.abbrev().to_string()];
        for ri in 0..rates.len() {
            row.push(f(linalg::stats::mean(&acc[&(m, ri)]), 2));
        }
        rows.push(row);
    }
    let mut row = vec!["Select".to_string()];
    for sel in &select_acc {
        row.push(f(linalg::stats::mean(sel), 2));
    }
    rows.push(row);
    for (name, vals) in paper {
        let mut row = vec![format!("paper {name}")];
        row.extend(vals.iter().map(|v| f(*v, 2)));
        rows.push(row);
    }

    print!(
        "{}",
        render_table(
            &[
                "method".into(),
                "1%".into(),
                "2%".into(),
                "3%".into(),
                "4%".into(),
                "5%".into(),
            ],
            &rows,
        )
    );
}
