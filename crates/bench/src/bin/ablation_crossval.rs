//! Ablation of the §3.3 error-estimation protocol.
//!
//! The paper takes the *maximum* of five 50 %-split estimates, noting that
//! "both of the error estimates are very close, and in general maximum
//! gives a closer estimate". This harness measures, over many sampled-DSE
//! repetitions, which statistic (mean vs max of the splits) lands closer
//! to the true error.

use bench::{banner, parse_common_args};
use cpusim::runner::sweep_design_space;
use cpusim::Benchmark;
use dse::data::table_from_sweep;
use dse::report::{f, render_table};
use linalg::dist::{child_seed, sample_indices, seeded_rng};
use linalg::stats::mape;
use mlmodels::crossval::estimate_error;
use mlmodels::{train, ModelKind};

fn main() {
    let (scale, seed, _) = parse_common_args();
    let _run = banner(
        "ablation: estimated-error statistic (mean vs max of 5 splits)",
        scale,
    );

    let space = scale.space();
    let mut sim = scale.sim_options();
    sim.seed = seed;
    let results = sweep_design_space(&space, Benchmark::Mesa, &sim);
    let full = table_from_sweep(&results);
    let n = full.n_rows();
    let k = (n / 20).max(24); // 5% sample

    let mut rows = Vec::new();
    for kind in [ModelKind::LrB, ModelKind::NnS] {
        let mut mean_gap = Vec::new();
        let mut max_gap = Vec::new();
        let mut underestimates_mean = 0usize;
        let mut underestimates_max = 0usize;
        let reps = 8;
        for rep in 0..reps {
            let rep_seed = child_seed(seed, 100 + rep);
            let mut rng = seeded_rng(rep_seed);
            let rows_idx = sample_indices(&mut rng, n, k);
            let sample = full.select_rows(&rows_idx);
            let model = train(kind, &sample, rep_seed);
            let (true_err, _) = mape(&model.predict(&full), full.target());
            let est = estimate_error(kind, &sample, child_seed(rep_seed, 1));
            mean_gap.push((est.mean - true_err).abs());
            max_gap.push((est.max - true_err).abs());
            if est.mean < true_err {
                underestimates_mean += 1;
            }
            if est.max < true_err {
                underestimates_max += 1;
            }
        }
        rows.push(vec![
            kind.abbrev().to_string(),
            f(linalg::stats::mean(&mean_gap), 2),
            f(linalg::stats::mean(&max_gap), 2),
            format!("{underestimates_mean}/{reps}"),
            format!("{underestimates_max}/{reps}"),
        ]);
    }
    print!(
        "{}",
        render_table(
            &[
                "model".into(),
                "|mean est - true|".into(),
                "|max est - true|".into(),
                "mean underestimates".into(),
                "max underestimates".into(),
            ],
            &rows,
        )
    );
    println!(
        "\npaper's claim to check: the max statistic tracks the true error more \
         closely (smaller gap) and underestimates less often."
    );
}
