//! Ablation of the sampling strategy.
//!
//! §4.2 attributes error-rate wobble to random sample selection: "even
//! though the data selection is random, it is possible that the selected
//! points may not be uniform through out the design space". This harness
//! compares the paper's uniform-random draw against systematic and
//! predictor-stratified sampling at 1 % and 3 %.

use bench::{banner, parse_common_args};
use cpusim::runner::sweep_design_space;
use cpusim::Benchmark;
use dse::report::{f, render_table};
use dse::sampled::{run_sampled_dse, SampledConfig, SamplingStrategy};
use mlmodels::ModelKind;

fn main() {
    let (scale, seed, _) = parse_common_args();
    let _run = banner(
        "ablation: sampling strategy (random vs systematic vs stratified)",
        scale,
    );

    let space = scale.space();
    let mut sim = scale.sim_options();
    sim.seed = seed;
    // Share one sweep across all strategies.
    let sweep = sweep_design_space(&space, Benchmark::Gcc, &sim);

    let mut rows = Vec::new();
    for (name, strategy) in [
        ("random (paper)", SamplingStrategy::Random),
        ("systematic", SamplingStrategy::Systematic),
        ("stratified", SamplingStrategy::StratifiedByPredictor),
    ] {
        let cfg = SampledConfig {
            sampling_rates: vec![0.01, 0.03],
            strategy,
            models: vec![ModelKind::NnS, ModelKind::LrB],
            sim,
            seed,
            estimate_errors: false,
            export_models: None,
        };
        let run = run_sampled_dse(Benchmark::Gcc, &space, &cfg, Some(sweep.clone()));
        // A fit that failed is dropped from the run, not fatal: render "-".
        let cell = |kind, rate| {
            run.point(kind, rate)
                .map_or_else(|| "-".to_string(), |p| f(p.true_error, 2))
        };
        rows.push(vec![
            name.to_string(),
            cell(ModelKind::NnS, 0.01),
            cell(ModelKind::NnS, 0.03),
            cell(ModelKind::LrB, 0.01),
            cell(ModelKind::LrB, 0.03),
        ]);
    }
    print!(
        "{}",
        render_table(
            &[
                "strategy".into(),
                "NN-S @1%".into(),
                "NN-S @3%".into(),
                "LR-B @1%".into(),
                "LR-B @3%".into(),
            ],
            &rows,
        )
    );
}
