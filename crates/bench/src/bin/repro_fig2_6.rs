//! Reproduces **Figures 2–6** — estimated vs. true error for the sampled
//! design-space exploration of one benchmark (applu, equake, gcc, mcf,
//! mesa), plotting NN-E, NN-S, and LR-B at 1–5 % sampling.
//!
//! Usage: `repro_fig2_6 [--scale quick|medium|full] [--app applu] [--all]`
//! — `--all` runs all five presented applications (Figures 2 through 6).

use bench::{banner, parse_common_args};
use cpusim::{Benchmark, DesignSpace};
use dse::report::render_series;
use dse::sampled::{run_sampled_dse, SampledConfig, SamplingStrategy};
use mlmodels::ModelKind;

fn run_one(b: Benchmark, space: &DesignSpace, cfg: &SampledConfig) {
    let figure = match b {
        Benchmark::Applu => "Figure 2",
        Benchmark::Equake => "Figure 3",
        Benchmark::Gcc => "Figure 4",
        Benchmark::Mcf => "Figure 5",
        Benchmark::Mesa => "Figure 6",
        _ => "(extension)",
    };
    let run = run_sampled_dse(b, space, cfg, None);
    println!(
        "{figure}: {} — mean % error vs training sample size (space {} configs, cycle range {:.2})",
        b.name(),
        run.space_size,
        run.range
    );
    let xs: Vec<String> = cfg
        .sampling_rates
        .iter()
        .map(|r| format!("{:.0}", r * 100.0))
        .collect();
    let mut curves: Vec<(&str, Vec<f64>)> = Vec::new();
    let names = ["NN-E", "NN-E-est", "NN-S", "NN-S-est", "LR-B", "LR-B-est"];
    let models = [ModelKind::NnE, ModelKind::NnS, ModelKind::LrB];
    for (mi, m) in models.iter().enumerate() {
        let true_curve: Vec<f64> = cfg
            .sampling_rates
            .iter()
            .map(|&r| run.point(*m, r).expect("point").true_error)
            .collect();
        let est_curve: Vec<f64> = cfg
            .sampling_rates
            .iter()
            .map(|&r| {
                run.point(*m, r)
                    .expect("point")
                    .estimated
                    .expect("estimation enabled")
                    .max
            })
            .collect();
        curves.push((names[mi * 2], true_curve));
        curves.push((names[mi * 2 + 1], est_curve));
    }
    print!("{}", render_series("sample%", &xs, &curves));
    println!();
}

fn main() {
    let (scale, seed, rest) = parse_common_args();
    let _run = banner("Figures 2–6: sampled design-space exploration", scale);

    let mut app: Option<String> = None;
    let mut all = false;
    let mut it = rest.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--app" => app = it.next().cloned(),
            "--all" => all = true,
            other => panic!("unknown argument '{other}'"),
        }
    }

    let space = scale.space();
    let mut sim = scale.sim_options();
    sim.seed = seed;
    let cfg = SampledConfig {
        sampling_rates: vec![0.01, 0.02, 0.03, 0.04, 0.05],
        strategy: SamplingStrategy::Random,
        models: ModelKind::FIGURE2_ORDER.to_vec(),
        sim,
        seed,
        estimate_errors: true,
        export_models: None,
    };

    let benches: Vec<Benchmark> = if all {
        Benchmark::PRESENTED.to_vec()
    } else {
        let name = app.unwrap_or_else(|| "applu".into());
        vec![Benchmark::from_name(&name).unwrap_or_else(|| panic!("unknown benchmark '{name}'"))]
    };
    for b in benches {
        run_one(b, &space, &cfg);
    }
}
