//! Reproduces **Figure 7** — chronological predictions (train on 2005,
//! predict 2006) for (a) Xeon, (b) Pentium 4, and (c) Pentium D: mean and
//! standard deviation of the percentage error for all nine models.

use bench::{banner, parse_common_args};
use dse::chrono::{run_chronological, ChronoConfig};
use dse::report::{f, render_table};
use mlmodels::ModelKind;
use specdata::ProcessorFamily;

fn main() {
    let (scale, seed, _) = parse_common_args();
    let _run = banner(
        "Figure 7: chronological predictions (Intel families)",
        scale,
    );

    for (panel, fam) in [
        ("(a)", ProcessorFamily::Xeon),
        ("(b)", ProcessorFamily::Pentium4),
        ("(c)", ProcessorFamily::PentiumD),
    ] {
        let cfg = ChronoConfig {
            train_year: 2005,
            models: ModelKind::FIGURE7_ORDER.to_vec(),
            data_seed: seed,
            seed,
            estimate_errors: false,
            export_models: None,
        };
        let r = run_chronological(fam, &cfg);
        println!(
            "Figure 7{panel}: {} — train 2005 ({} records) -> predict 2006 ({} records)",
            fam.name(),
            r.n_train,
            r.n_test
        );
        let rows: Vec<Vec<String>> = r
            .points
            .iter()
            .map(|p| {
                vec![
                    p.model.abbrev().to_string(),
                    f(p.error_mean, 2),
                    f(p.error_std, 2),
                ]
            })
            .collect();
        print!(
            "{}",
            render_table(&["model".into(), "mean err %".into(), "std".into()], &rows)
        );
        let (best, err) = r.best();
        println!("best: {} at {:.2}%\n", best.model.abbrev(), err);
    }
}
