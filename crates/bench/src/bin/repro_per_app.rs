//! Extension of §4.3 the paper ran but cut for space: chronological
//! prediction of **individual SPEC application** ratios ("we have also
//! tested individual SPEC applications and show that they can also be
//! accurately estimated, however due to space constraints their
//! presentations are omitted").
//!
//! Trains LR-E and NN-E on each of the twelve SPECint2000 per-application
//! ratios for 2005 and predicts 2006, per family.

use bench::{banner, parse_common_args};
use dse::data::table_from_announcements_app;
use dse::report::{f, render_table};
use linalg::stats::mape;
use mlmodels::{train, ModelKind};
use specdata::rating::SPECINT_APPS;
use specdata::{Announcement, AnnouncementSet, ProcessorFamily};

fn main() {
    let (scale, seed, _) = parse_common_args();
    let _run = banner(
        "§4.3 extension: per-application chronological prediction",
        scale,
    );

    for fam in [ProcessorFamily::Xeon, ProcessorFamily::Opteron2] {
        let set = AnnouncementSet::generate(fam, seed);
        let (train_recs, test_recs): (Vec<&Announcement>, Vec<&Announcement>) =
            set.chronological_split(2005);
        println!(
            "{} — per-application error, 2005 ({}) -> 2006 ({}):",
            fam.name(),
            train_recs.len(),
            test_recs.len()
        );
        let mut rows = Vec::new();
        let mut lr_errors = Vec::new();
        for (app, name) in SPECINT_APPS.iter().enumerate() {
            let train_table = table_from_announcements_app(&train_recs, app);
            let test_table = table_from_announcements_app(&test_recs, app);
            let lr = train(ModelKind::LrE, &train_table, seed);
            let (lr_err, _) = mape(&lr.predict(&test_table), test_table.target());
            let nn = train(ModelKind::NnQ, &train_table, seed);
            let (nn_err, _) = mape(&nn.predict(&test_table), test_table.target());
            lr_errors.push(lr_err);
            rows.push(vec![name.to_string(), f(lr_err, 2), f(nn_err, 2)]);
        }
        print!(
            "{}",
            render_table(
                &[
                    "application".into(),
                    "LR-E err %".into(),
                    "NN-Q err %".into()
                ],
                &rows,
            )
        );
        println!(
            "mean LR-E error across applications: {:.2}%\n",
            linalg::stats::mean(&lr_errors)
        );
    }
}
