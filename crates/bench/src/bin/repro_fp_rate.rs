//! Extension: chronological prediction of the **SPECfp2000 rate** — the
//! paper's §4 names both rates ("SPECint2000 rate (and SPECfp2000 rate)")
//! but presents only the integer rate in §4.3.

use bench::{banner, parse_common_args};
use dse::data::{table_from_announcements, table_from_announcements_fp};
use dse::report::{f, render_table};
use linalg::stats::mape;
use mlmodels::{train, ModelKind};
use specdata::{Announcement, AnnouncementSet, ProcessorFamily};

fn main() {
    let (scale, seed, _) = parse_common_args();
    let _run = banner("§4.3 extension: SPECfp2000 rate prediction", scale);

    let mut rows = Vec::new();
    for fam in ProcessorFamily::ALL {
        let set = AnnouncementSet::generate(fam, seed);
        let (train_recs, test_recs): (Vec<&Announcement>, Vec<&Announcement>) =
            set.chronological_split(2005);

        let eval = |train_t: &mlmodels::Table, test_t: &mlmodels::Table| -> f64 {
            let m = train(ModelKind::LrE, train_t, seed);
            let (err, _) = mape(&m.predict(test_t), test_t.target());
            err
        };
        let int_err = eval(
            &table_from_announcements(&train_recs),
            &table_from_announcements(&test_recs),
        );
        let fp_err = eval(
            &table_from_announcements_fp(&train_recs),
            &table_from_announcements_fp(&test_recs),
        );
        rows.push(vec![fam.name().to_string(), f(int_err, 2), f(fp_err, 2)]);
    }
    print!(
        "{}",
        render_table(
            &[
                "family".into(),
                "LR-E int err %".into(),
                "LR-E fp err %".into()
            ],
            &rows,
        )
    );
    println!(
        "\nexpectation: fp errors track the int errors closely — the same \
         components drive both rates, fp with a slightly noisier tilt."
    );
}
