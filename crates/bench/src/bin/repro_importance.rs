//! Reproduces the **§4.4 importance analysis**: the most important
//! predictors for the chronological models.
//!
//! Paper findings: for Opteron systems the neural network ranks processor
//! speed (0.659), memory frequency (0.154), L2 on/off chip (0.147), and L1
//! data cache size (0.139); the regression keeps processor speed (β* 0.915)
//! and memory size (β* 0.119). For Pentium D the network adds L2 cache
//! size (0.500) and sharing flags; the regression keeps processor speed
//! (0.733), L2 size (0.583), memory size, memory frequency, and L1 size.

use bench::{banner, parse_common_args};
use dse::chrono::{run_chronological, ChronoConfig};
use dse::report::{f, render_table};
use mlmodels::ModelKind;
use specdata::ProcessorFamily;

fn main() {
    let (scale, seed, _) = parse_common_args();
    let _run = banner("§4.4: predictor importance", scale);

    for fam in [ProcessorFamily::Opteron, ProcessorFamily::PentiumD] {
        let cfg = ChronoConfig {
            train_year: 2005,
            models: vec![ModelKind::NnE, ModelKind::LrE],
            data_seed: seed,
            seed,
            estimate_errors: false,
            export_models: None,
        };
        let r = run_chronological(fam, &cfg);
        println!("{} — top predictors:", fam.name());
        for p in &r.points {
            let label = if p.model.is_linear() {
                "|standardized beta|"
            } else {
                "sensitivity (top = 1.0)"
            };
            println!("  {} ({label}):", p.model.abbrev());
            let rows: Vec<Vec<String>> = p
                .importance
                .iter()
                .take(6)
                .map(|imp| vec![imp.name.clone(), f(imp.score, 3)])
                .collect();
            let table = render_table(&["predictor".into(), "score".into()], &rows);
            for line in table.lines() {
                println!("    {line}");
            }
        }
        println!();
    }
    println!(
        "Paper reference — Opteron NN: processor speed 0.659, memory freq 0.154, \
         L2 on/off chip 0.147, L1D size 0.139; Opteron LR: speed 0.915, memory size 0.119."
    );
    println!(
        "Pentium D NN: speed 0.570, L2 size 0.500, L1 shared 0.206, L2 shared 0.154, \
         L1D 0.145, bus 0.120; LR: speed 0.733, L2 0.583, mem size 0.001, mem freq 0.094, L1 0.297."
    );
}
