//! `soak_serve` — sustained, fault-injected soak of the serve daemon.
//!
//! Where the criterion benches measure microseconds, this harness runs
//! the daemon for *minutes* and proves the robustness contract holds
//! under continuous abuse. A two-model daemon serves a unix socket
//! while the driver cycles through injected faults from
//! `dse::faultinject`:
//!
//! * **steady** — cache-heavy replay against both models (the p99 SLO
//!   is measured over these admitted requests);
//! * **corrupt reload** — the second model's artifact is mangled on
//!   disk and reloaded (quarantine), then restored and reloaded
//!   (recovery); the first model must keep serving throughout;
//! * **garbage / torn frames** — non-JSON bytes get typed `invalid`
//!   responses, and a connection dropped mid-frame aborts only that
//!   connection, never the daemon;
//! * **burst** — a frame burst several times the admission capacity;
//! * **slow consumer** — an in-memory pass against a
//!   `faultinject::SlowWriter` where load-shedding is guaranteed, so
//!   the typed-`Overloaded`/no-silent-drop conservation law is checked
//!   exactly every cycle.
//!
//! SLOs are asserted at the end and violations exit with the
//! perf-regression code (6): bounded p99 for admitted requests, at
//! least one typed shed with exact response conservation, at least one
//! typed quarantined rejection, stable RSS (no monotonic growth), and
//! byte-identical admitted responses across 1..N workers.
//!
//! Usage: `soak_serve [--secs N] [--quick]` — default 150 s (the soak
//! gate requires ≥ 2 minutes); `--quick` is the CI smoke at 20 s.

use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use dse::faultinject;
use fault::{Error, Result};
use mlmodels::{try_train, ModelArtifact, ModelKind, Table};
use serve::{generate_requests, Daemon, DaemonConfig, DaemonStats, Registry, RegistryConfig};
use telemetry::hist::Histogram;

const P99_SLO_MS: f64 = 250.0;
const STEADY_FRAMES: usize = 200;
const BURST_FRAMES: usize = 768;
const SLOW_FRAMES: usize = 160;

fn main() {
    match run() {
        Ok(()) => println!("soak_serve: all SLOs held"),
        Err(e) => {
            eprintln!("soak_serve: {e}");
            std::process::exit(e.exit_code());
        }
    }
}

/// Deterministic training table shaped like the paper's design space
/// (same lattice the serve bench uses).
fn training_table() -> Table {
    let n = 256;
    let l1 = [8.0, 16.0, 32.0, 64.0];
    let l2 = [256.0, 512.0, 1024.0, 2048.0];
    let width = [2.0, 4.0, 8.0];
    let xs1: Vec<f64> = (0..n).map(|i| l1[i % l1.len()]).collect();
    let xs2: Vec<f64> = (0..n).map(|i| l2[(i / 4) % l2.len()]).collect();
    let xs3: Vec<f64> = (0..n).map(|i| width[(i / 16) % width.len()]).collect();
    let flags: Vec<bool> = (0..n).map(|i| (i / 48) % 2 == 0).collect();
    let codes: Vec<u32> = (0..n).map(|i| ((i / 96) % 3) as u32).collect();
    let y: Vec<f64> = (0..n)
        .map(|i| {
            1e6 / (xs1[i].log2() + 0.01 * xs2[i].sqrt() + xs3[i])
                + if flags[i] { -2e4 } else { 0.0 }
                + codes[i] as f64 * 1e4
        })
        .collect();
    let mut t = Table::new();
    t.add_numeric("l1_kb", xs1)
        .add_numeric("l2_kb", xs2)
        .add_numeric("width", xs3)
        .add_flag("wrong_path", flags)
        .add_categorical(
            "bpred",
            codes,
            vec!["Bimodal".into(), "TwoLevel".into(), "Perfect".into()],
        )
        .set_target(y);
    t
}

/// Resident set size in kB from /proc/self/status, when available.
fn rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmRSS:") {
            return rest.trim().trim_end_matches("kB").trim().parse().ok();
        }
    }
    None
}

/// A soak client: one socket connection plus a drain thread that feeds
/// every response line into a channel, so the driver can blast frames
/// without ever deadlocking against the daemon's writes.
struct Client {
    stream: UnixStream,
    rx: mpsc::Receiver<String>,
}

impl Drop for Client {
    // The drain thread holds a cloned fd, so dropping the stream alone
    // would never EOF the daemon's read side; shut the write direction
    // down explicitly so the daemon moves on to the next connection.
    fn drop(&mut self) {
        let _ = self.stream.shutdown(std::net::Shutdown::Write);
    }
}

impl Client {
    fn connect(path: &str) -> Result<Client> {
        for _ in 0..400 {
            match UnixStream::connect(path) {
                Ok(stream) => {
                    let reader = stream.try_clone().map_err(|e| Error::io(path, e))?;
                    let (tx, rx) = mpsc::channel();
                    std::thread::spawn(move || {
                        let mut r = BufReader::new(reader);
                        let mut line = String::new();
                        loop {
                            line.clear();
                            match r.read_line(&mut line) {
                                Ok(0) | Err(_) => break,
                                Ok(_) => {
                                    if tx.send(line.trim_end().to_string()).is_err() {
                                        break;
                                    }
                                }
                            }
                        }
                    });
                    return Ok(Client { stream, rx });
                }
                Err(_) => std::thread::sleep(Duration::from_millis(5)),
            }
        }
        Err(Error::invalid(format!(
            "daemon socket never came up at {path}"
        )))
    }

    fn send(&mut self, frame: &str) -> Result<()> {
        self.stream
            .write_all(frame.as_bytes())
            .and_then(|()| self.stream.write_all(b"\n"))
            .map_err(|e| Error::io("<soak client>", e))
    }

    /// Receive one response line; a timeout is a conservation violation
    /// (the daemon owed a response and never sent it).
    fn recv(&self, what: &str) -> Result<String> {
        self.rx.recv_timeout(Duration::from_secs(20)).map_err(|_| {
            Error::invalid(format!(
                "response conservation violated: no response for {what} within 20s"
            ))
        })
    }
}

/// Tallies of every typed response class seen over the socket.
#[derive(Default)]
struct Tally {
    sent: u64,
    received: u64,
    predictions: u64,
    overloaded: u64,
    quarantined: u64,
    invalid: u64,
    other_errors: u64,
    rtt: Histogram,
}

impl Tally {
    fn record(&mut self, line: &str) {
        self.received += 1;
        if line.contains("\"prediction\":") {
            self.predictions += 1;
        } else if line.contains("\"error\":\"overloaded\"") {
            self.overloaded += 1;
        } else if line.contains("\"error\":\"quarantined\"") {
            self.quarantined += 1;
        } else if line.contains("\"error\":\"invalid\"") {
            self.invalid += 1;
        } else if line.contains("\"error\":") {
            self.other_errors += 1;
        }
    }
}

/// Route a generated request frame to a named model by splicing a
/// `"model"` field into the JSON object.
fn routed(frame: &str, model: &str) -> String {
    frame.replacen('{', &format!("{{\"model\":\"{model}\","), 1)
}

fn steady_phase(
    client: &mut Client,
    stream_a: &[&str],
    stream_b: &[&str],
    tally: &mut Tally,
) -> Result<()> {
    for (i, frame) in stream_a.iter().chain(stream_b.iter()).enumerate() {
        let t0 = Instant::now();
        client.send(frame)?;
        tally.sent += 1;
        let line = client.recv("steady frame")?;
        tally.record(&line);
        tally.rtt.observe_ns(t0.elapsed());
        if i % 32 == 0 {
            telemetry::hist_observe_ns("soak/client_rtt_ns", t0.elapsed());
        }
    }
    Ok(())
}

fn burst_phase(client: &mut Client, stream: &[&str], tally: &mut Tally) -> Result<()> {
    let mut sent = 0u64;
    while sent < u64::try_from(BURST_FRAMES).expect("burst count fits u64") {
        for frame in stream {
            client.send(frame)?;
            sent += 1;
        }
    }
    tally.sent += sent;
    for _ in 0..sent {
        let line = client.recv("burst frame")?;
        tally.record(&line);
    }
    Ok(())
}

fn garbage_phase(client: &mut Client, tally: &mut Tally, seed: u64, probe: &str) -> Result<()> {
    for k in 0..4u64 {
        client.send(&faultinject::garbage_frame(seed.wrapping_add(k)))?;
        tally.sent += 1;
    }
    client.send(probe)?;
    tally.sent += 1;
    for _ in 0..5 {
        let line = client.recv("garbage-phase frame")?;
        tally.record(&line);
    }
    Ok(())
}

/// Drop a connection mid-frame: the daemon answers the torn tail into a
/// closing socket, aborts that connection, and must accept the next one.
fn torn_connection_phase(sock: &str) -> Result<()> {
    let mut victim = Client::connect(sock)?;
    victim
        .stream
        .write_all(b"{\"id\":\"torn\",\"l1_kb\":")
        .map_err(|e| Error::io("<soak client>", e))?;
    drop(victim);
    Ok(())
}

struct CorruptOutcome {
    quarantined_rejects: u64,
    recovered: bool,
}

/// Corrupt model B on disk, reload (quarantine), verify fail-closed
/// behaviour and that model A still serves, then restore and reload.
fn corrupt_reload_phase(
    client: &mut Client,
    path_b: &str,
    good_bytes: &[u8],
    probe_a: &str,
    misses_b: &[&str],
    cycle: u64,
    tally: &mut Tally,
) -> Result<CorruptOutcome> {
    faultinject::corrupt_artifact_bytes(path_b, 32, 0xB0B_u64.wrapping_add(cycle))?;
    client.send("{\"id\":\"rl-bad\",\"op\":\"reload\",\"model\":\"m_b\"}")?;
    tally.sent += 1;
    let reload_resp = client.recv("corrupt reload ack")?;
    tally.record(&reload_resp);
    if !reload_resp.contains("\"error\":") {
        return Err(Error::invalid(format!(
            "corrupt reload must be a typed error, got: {reload_resp}"
        )));
    }

    // Model A is untouched and must keep serving (fail-closed applies
    // to the quarantined version only, never the process).
    client.send(probe_a)?;
    tally.sent += 1;
    let a_resp = client.recv("model-A probe during quarantine")?;
    tally.record(&a_resp);

    // Cache-missing requests to the quarantined model B get typed
    // `quarantined` rejections; salvaged cache hits may still serve.
    let mut quarantined_rejects = 0u64;
    for frame in misses_b {
        client.send(frame)?;
        tally.sent += 1;
        let line = client.recv("quarantined-model probe")?;
        if line.contains("\"error\":\"quarantined\"") {
            quarantined_rejects += 1;
        }
        tally.record(&line);
    }

    // Restore the artifact and reload: the route must recover.
    std::fs::write(path_b, good_bytes).map_err(|e| Error::io(path_b, e))?;
    client.send("{\"id\":\"rl-good\",\"op\":\"reload\",\"model\":\"m_b\"}")?;
    tally.sent += 1;
    let recover_resp = client.recv("recovery reload ack")?;
    let recovered = recover_resp.contains("\"ok\":true");
    tally.record(&recover_resp);
    Ok(CorruptOutcome {
        quarantined_rejects,
        recovered,
    })
}

struct SlowConsumerOutcome {
    shed: u64,
    conserved: bool,
}

/// In-memory slow-consumer pass: a fresh daemon writes through a
/// `SlowWriter`, the queue backs up, and shedding is guaranteed. Every
/// frame must still get exactly one typed response.
fn slow_consumer_pass(path_a: &str, stream: &str) -> Result<SlowConsumerOutcome> {
    let mut registry = Registry::new(RegistryConfig {
        cache_cap: 16,
        ..RegistryConfig::default()
    });
    registry.load("m_a", path_a)?;
    let config = DaemonConfig {
        window: 2,
        queue_cap: 4,
        workers: 2,
        deadline_ms: None,
        max_frame_bytes: 1 << 20,
        default_model: Some("m_a".to_string()),
    };
    let mut daemon = Daemon::new(config, registry)?;
    let out = Arc::new(Mutex::new(faultinject::SlowWriter::new(
        Vec::new(),
        Duration::from_millis(2),
    )));
    let frames: Vec<&str> = stream.lines().take(SLOW_FRAMES).collect();
    let input = frames.join("\n") + "\n";
    let stats = daemon.run(std::io::Cursor::new(input.into_bytes()), Arc::clone(&out))?;
    let written = {
        let guard = match out.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        guard.inner().clone()
    };
    let lines = String::from_utf8(written)
        .map_err(|_| Error::invalid("slow-consumer output is not UTF-8"))?;
    let responses = u64::try_from(lines.lines().count()).expect("line count fits u64");
    let total = u64::try_from(frames.len()).expect("frame count fits u64");
    let conserved =
        responses == total && stats.requests + stats.shed + stats.degraded_rejects == total;
    Ok(SlowConsumerOutcome {
        shed: stats.shed,
        conserved,
    })
}

/// Keep only the first frame per distinct config body. The workload
/// generator samples with replacement, and a *repeated* config's
/// `cached` flag depends on which admission window each occurrence
/// lands in — a race, not a determinism bug — so the byte-identity
/// check must run on an all-distinct stream where every response is
/// deterministically `cached:false`.
fn dedupe_requests(stream: &str) -> String {
    let mut seen: std::collections::BTreeSet<String> = std::collections::BTreeSet::new();
    let mut out = String::new();
    for line in stream.lines() {
        // Generated frames are `{"id":"gN",<config...>}` — the config
        // body after the first comma is the identity.
        let body = line.split_once(',').map_or(line, |(_, rest)| rest);
        if seen.insert(body.to_string()) {
            out.push_str(line);
            out.push('\n');
        }
    }
    out
}

/// Byte-identical admitted responses across worker counts: an
/// all-distinct stream (so the `cached` flag is deterministic) replayed
/// through fresh daemons at 1, 2, and 4 workers.
fn worker_determinism_pass(path_a: &str, schema_stream: &str) -> Result<bool> {
    let mut outputs: Vec<Vec<u8>> = Vec::new();
    for workers in [1usize, 2, 4] {
        let mut registry = Registry::new(RegistryConfig::default());
        registry.load("m_a", path_a)?;
        let config = DaemonConfig {
            window: 64,
            queue_cap: 1024,
            workers,
            deadline_ms: None,
            max_frame_bytes: 1 << 20,
            default_model: Some("m_a".to_string()),
        };
        let mut daemon = Daemon::new(config, registry)?;
        let out: Arc<Mutex<Vec<u8>>> = Arc::new(Mutex::new(Vec::new()));
        daemon.run(
            std::io::Cursor::new(schema_stream.as_bytes().to_vec()),
            Arc::clone(&out),
        )?;
        let bytes = {
            let guard = match out.lock() {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
            guard.clone()
        };
        outputs.push(bytes);
    }
    Ok(outputs.iter().all(|o| *o == outputs[0]))
}

fn run() -> Result<()> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut secs: u64 = 150;
    if args.iter().any(|a| a == "--quick") {
        secs = 20;
    }
    if let Some(i) = args.iter().position(|a| a == "--secs") {
        let v = args
            .get(i + 1)
            .ok_or_else(|| Error::invalid("--secs requires a value"))?;
        secs = v
            .parse()
            .map_err(|_| Error::invalid(format!("--secs expects a number, got '{v}'")))?;
    }
    println!("soak_serve: {secs}s fault-injected soak (p99 SLO {P99_SLO_MS} ms)");

    // ── Setup: train two artifacts, save to disk, start the daemon. ──
    let dir = std::env::temp_dir().join(format!("perfpredict-soak-{}", std::process::id()));
    std::fs::create_dir_all(&dir).map_err(|e| Error::io(dir.to_string_lossy().into_owned(), e))?;
    let table = training_table();
    let art_a = ModelArtifact::from_training(try_train(ModelKind::LrB, &table, 0x5E2)?, &table);
    let art_b = ModelArtifact::from_training(try_train(ModelKind::NnQ, &table, 0x5E2)?, &table);
    let path_a = dir.join("m_a.ppmodel").to_string_lossy().into_owned();
    let path_b = dir.join("m_b.ppmodel").to_string_lossy().into_owned();
    art_a.save(&path_a)?;
    art_b.save(&path_b)?;
    let good_bytes_b = std::fs::read(&path_b).map_err(|e| Error::io(&path_b, e))?;

    let mut registry = Registry::new(RegistryConfig {
        cache_cap: 16, // small on purpose: quarantined-route misses must occur
        ..RegistryConfig::default()
    });
    registry.load("m_a", &path_a)?;
    registry.load("m_b", &path_b)?;
    let config = DaemonConfig {
        window: 64,
        queue_cap: 256,
        workers: 2,
        deadline_ms: None,
        max_frame_bytes: 1 << 20,
        default_model: Some("m_a".to_string()),
    };
    let sock = dir.join("soak.sock").to_string_lossy().into_owned();
    let server_sock = sock.clone();
    let mut daemon = Daemon::new(config, registry)?;
    let server = std::thread::spawn(move || daemon.run_socket(&server_sock));

    // Pre-generated streams. Steady uses a hot set (cache hits dominate,
    // the p99 SLO case); burst and quarantine probes use distinct
    // configs so misses are guaranteed against the 16-entry cache.
    let steady = generate_requests(&art_a.schema, STEADY_FRAMES, 8, 0x5E2)?;
    let steady_a: Vec<String> = steady
        .lines()
        .take(STEADY_FRAMES / 2)
        .map(String::from)
        .collect();
    let steady_b: Vec<String> = steady
        .lines()
        .skip(STEADY_FRAMES / 2)
        .map(|l| routed(l, "m_b"))
        .collect();
    let burst = generate_requests(&art_a.schema, 96, 96, 0xB00)?;
    let burst_frames: Vec<String> = burst.lines().map(String::from).collect();
    let miss_stream = generate_requests(&art_b.schema, 40, 40, 0x0DD)?;
    let miss_b: Vec<String> = miss_stream.lines().map(|l| routed(l, "m_b")).collect();
    let slow_stream = generate_requests(&art_a.schema, SLOW_FRAMES, 8, 0x51C)?;
    let distinct_stream = dedupe_requests(&generate_requests(&art_a.schema, 128, 128, 0xD15)?);

    // ── Soak loop. ──
    let deadline = Instant::now() + Duration::from_secs(secs);
    let mut tally = Tally::default();
    let mut cycles = 0u64;
    let mut recoveries = 0u64;
    let mut quarantined_rejects = 0u64;
    let mut shed_total = 0u64;
    let mut slow_conserved = true;
    let mut rss_samples: Vec<u64> = Vec::new();
    let mut client = Client::connect(&sock)?;
    let steady_a_refs: Vec<&str> = steady_a.iter().map(String::as_str).collect();
    let steady_b_refs: Vec<&str> = steady_b.iter().map(String::as_str).collect();
    let burst_refs: Vec<&str> = burst_frames.iter().map(String::as_str).collect();
    let miss_refs: Vec<&str> = miss_b.iter().map(String::as_str).collect();

    while Instant::now() < deadline {
        steady_phase(&mut client, &steady_a_refs, &steady_b_refs, &mut tally)?;
        let outcome = corrupt_reload_phase(
            &mut client,
            &path_b,
            &good_bytes_b,
            steady_a_refs[0],
            &miss_refs,
            cycles,
            &mut tally,
        )?;
        quarantined_rejects += outcome.quarantined_rejects;
        if outcome.recovered {
            recoveries += 1;
        }
        garbage_phase(&mut client, &mut tally, cycles, steady_a_refs[1])?;
        // The torn connection kills `client`'s socket peer ordering, so
        // run it on its own connection, then continue on a fresh one.
        drop(client);
        torn_connection_phase(&sock)?;
        client = Client::connect(&sock)?;
        burst_phase(&mut client, &burst_refs, &mut tally)?;

        let slow = slow_consumer_pass(&path_a, &slow_stream)?;
        shed_total += slow.shed;
        slow_conserved &= slow.conserved;

        if let Some(kb) = rss_kb() {
            telemetry::gauge_set("soak/rss_kb", kb as f64);
            rss_samples.push(kb);
        }
        cycles += 1;
        println!(
            "cycle {cycles}: {} sent / {} answered, {} shed (in-mem), {} quarantined rejects, rss {} kB",
            tally.sent,
            tally.received,
            shed_total,
            quarantined_rejects,
            rss_samples.last().copied().unwrap_or(0)
        );
    }

    let deterministic = worker_determinism_pass(&path_a, &distinct_stream)?;

    // ── Shutdown and collect daemon-side stats. ──
    client.send("{\"id\":\"bye\",\"op\":\"shutdown\"}")?;
    tally.sent += 1;
    let bye = client.recv("shutdown ack")?;
    tally.record(&bye);
    drop(client);
    let stats: DaemonStats = server
        .join()
        .map_err(|_| Error::invalid("daemon server thread panicked"))??;

    // ── SLO verdict. ──
    let mut violations: Vec<String> = Vec::new();
    if stats.p99_ms > P99_SLO_MS {
        violations.push(format!(
            "serve/daemon_p99_ms {:.3} > SLO {P99_SLO_MS}",
            stats.p99_ms
        ));
    }
    if shed_total == 0 {
        violations.push("soak/shed_total 0 — slow-consumer pass never shed".to_string());
    }
    if !slow_conserved {
        violations
            .push("soak/conservation violated — shed frames without typed responses".to_string());
    }
    if tally.received != tally.sent {
        violations.push(format!(
            "soak/socket_conservation {} responses for {} frames",
            tally.received, tally.sent
        ));
    }
    if quarantined_rejects == 0 {
        violations
            .push("soak/quarantined_rejects 0 — fail-closed path never exercised".to_string());
    }
    if recoveries != cycles {
        violations.push(format!(
            "soak/recoveries {recoveries} of {cycles} corrupt-reload cycles recovered"
        ));
    }
    if !deterministic {
        violations.push("soak/worker_determinism outputs differ across 1..4 workers".to_string());
    }
    if rss_samples.len() >= 2 {
        let base = rss_samples[0];
        let last = rss_samples[rss_samples.len() - 1];
        let ceiling = base + (base / 2).max(49_152); // +50% or +48 MiB slack
        if last > ceiling {
            violations.push(format!(
                "soak/rss_kb grew {base} -> {last} (ceiling {ceiling})"
            ));
        }
    } else {
        println!("note: /proc/self/status unavailable; RSS SLO skipped");
    }

    let rtt_ms = |q: f64| tally.rtt.quantile(q) as f64 / 1e6;
    let mut summary: BTreeMap<&str, String> = BTreeMap::new();
    summary.insert("cycles", cycles.to_string());
    summary.insert("frames_sent", tally.sent.to_string());
    summary.insert("predictions", tally.predictions.to_string());
    summary.insert(
        "overloaded_typed",
        (tally.overloaded + shed_total).to_string(),
    );
    summary.insert("quarantined_typed", tally.quarantined.to_string());
    summary.insert("invalid_typed", tally.invalid.to_string());
    summary.insert("daemon_p99_ms", format!("{:.3}", stats.p99_ms));
    summary.insert("client_rtt_p50_ms", format!("{:.3}", rtt_ms(0.50)));
    summary.insert("client_rtt_p99_ms", format!("{:.3}", rtt_ms(0.99)));
    summary.insert("conn_aborts_survived", cycles.to_string());
    println!("\nsoak summary:");
    for (k, v) in &summary {
        println!("  {k:>22}  {v}");
    }

    let _ = std::fs::remove_dir_all(&dir);
    if violations.is_empty() {
        Ok(())
    } else {
        Err(Error::Regression {
            metrics: violations,
        })
    }
}
