//! Reproduces **Table 1** — "Configurations used in microprocessor study".
//!
//! Prints every parameter with its value domain and verifies the canonical
//! lattice holds exactly 4608 configurations per benchmark.

use cpusim::DesignSpace;
use dse::report::render_table;

fn main() {
    let (scale, _seed, _rest) = bench::parse_common_args();
    let _run = bench::banner(
        "Table 1: configurations used in microprocessor study",
        scale,
    );
    let rows: Vec<Vec<String>> = vec![
        vec!["L1 Data Cache Size".into(), "16, 32, 64 KB".into()],
        vec!["L1 Data Cache Line Size".into(), "32, 64 B".into()],
        vec!["L1 Data Cache Associativity".into(), "4".into()],
        vec!["L1 Instruction Cache Size".into(), "16, 32, 64 KB".into()],
        vec!["L1 Instruction Cache Line Size".into(), "32, 64 B".into()],
        vec!["L1 Instruction Cache Assoc.".into(), "4".into()],
        vec!["L2 Cache Size".into(), "256, 1024 KB".into()],
        vec!["L2 Cache Line Size".into(), "128 B".into()],
        vec!["L2 Cache Associativity".into(), "4, 8".into()],
        vec!["L3 Cache Size".into(), "0, 8 MB".into()],
        vec!["L3 Cache Line Size".into(), "0, 256 B".into()],
        vec!["L3 Cache Associativity".into(), "0, 8".into()],
        vec![
            "Branch Predictor".into(),
            "Perfect, Bimodal, 2-level, Combination".into(),
        ],
        vec!["Decode/Issue/Commit Width".into(), "4, 8".into()],
        vec!["Issue wrong".into(), "Yes, No".into()],
        vec!["Register Update unit".into(), "128, 256".into()],
        vec!["Load/Store queue".into(), "64, 128".into()],
        vec!["Instruction TLB size".into(), "256, 1024 KB".into()],
        vec!["Data TLB size".into(), "512, 2048 KB".into()],
        vec![
            "Functional Units (ialu/imult/memport/fpalu/fpmult)".into(),
            "4/2/2/4/2, 8/4/4/8/4".into(),
        ],
    ];
    print!(
        "{}",
        render_table(&["Parameters".into(), "Values".into()], &rows)
    );

    let space = DesignSpace::table1();
    println!(
        "\nEnumerated design space: {} configurations per benchmark (paper: 4608)",
        space.len()
    );
    assert_eq!(space.len(), 4608, "lattice must match the paper exactly");
    println!("OK: lattice matches the paper's count exactly.");
}
