//! Ablation: adaptive (query-by-committee) sampling vs. the paper's
//! one-shot random sampling at equal simulation budgets.

use bench::{banner, parse_common_args};
use cpusim::runner::sweep_design_space;
use cpusim::Benchmark;
use dse::adaptive::{try_run_adaptive, AdaptiveConfig};
use dse::report::{f, render_table};
use mlmodels::ModelKind;

fn main() {
    let (scale, seed, _) = parse_common_args();
    let _run = banner(
        "ablation: adaptive sampling (query-by-committee) vs random",
        scale,
    );

    let space = scale.space();
    let mut sim = scale.sim_options();
    sim.seed = seed;

    for b in [Benchmark::Mesa, Benchmark::Gcc] {
        let sweep = sweep_design_space(&space, b, &sim);
        let n = space.len();
        // 1% of the space per round, but never below a trainable floor
        // (quick-scale spaces are small).
        let unit = (n / 100).max(12);
        let cfg = AdaptiveConfig {
            initial: unit,
            batch: unit,
            rounds: 4, // seed + 4 rounds = up to ~5% of the space
            committee: 5,
            member: ModelKind::NnQ,
            final_model: ModelKind::NnE,
            sim,
            seed,
            ..Default::default()
        };
        let r = try_run_adaptive(b, &space, &cfg, Some(sweep), None)
            .expect("ablation space fits the adaptive budget");
        println!("{} ({} configs):", b.name(), n);
        let rows: Vec<Vec<String>> = r
            .trajectory
            .iter()
            .map(|p| {
                vec![
                    p.budget.to_string(),
                    f(p.adaptive_error, 2),
                    f(p.random_error, 2),
                    f(p.random_error - p.adaptive_error, 2),
                ]
            })
            .collect();
        print!(
            "{}",
            render_table(
                &[
                    "budget".into(),
                    "adaptive err %".into(),
                    "random err %".into(),
                    "gain %".into(),
                ],
                &rows,
            )
        );
        println!();
    }
}
