//! Reproduces **Table 2** — "The best accuracy and the model that achieves
//! this for single and multi-processor chronological predictive modeling."
//!
//! Paper row: Xeon 2.1 (LR-E), Pentium D 2.2 (LR-E), Pentium 4 1.5 (LR-E),
//! Opteron 2.1 (LR-B/LR-S), Opteron 2 3.1, Opteron 4 3.2, Opteron 8 3.5
//! (all LR-B/LR-S).

use bench::{banner, parse_common_args};
use dse::chrono::{run_chronological, ChronoConfig};
use dse::report::{f, render_table};
use mlmodels::ModelKind;
use specdata::ProcessorFamily;

fn main() {
    let (scale, seed, _) = parse_common_args();
    let _run = banner("Table 2: best chronological accuracy per family", scale);

    let paper: &[(&str, f64, &str)] = &[
        ("Xeon", 2.1, "LR-E"),
        ("Pentium D", 2.2, "LR-E"),
        ("Pentium 4", 1.5, "LR-E"),
        ("Opteron", 2.1, "LR-B/LR-S"),
        ("Opteron 2", 3.1, "LR-B/LR-S"),
        ("Opteron 4", 3.2, "LR-B/LR-S"),
        ("Opteron 8", 3.5, "LR-B/LR-S"),
    ];

    let mut rows = Vec::new();
    for &(name, paper_err, paper_method) in paper {
        let fam = ProcessorFamily::from_name(name).expect("family name");
        let cfg = ChronoConfig {
            train_year: 2005,
            models: ModelKind::FIGURE7_ORDER.to_vec(),
            data_seed: seed,
            seed,
            estimate_errors: false,
            export_models: None,
        };
        let r = run_chronological(fam, &cfg);
        let (_, best_err) = r.best();
        let winners = r.best_set(0.02);
        let winners: Vec<&str> = winners.iter().map(|m| m.abbrev()).collect();
        rows.push(vec![
            name.to_string(),
            f(best_err, 2),
            f(paper_err, 1),
            winners.join("/"),
            paper_method.to_string(),
        ]);
    }
    print!(
        "{}",
        render_table(
            &[
                "family".into(),
                "best err %".into(),
                "paper".into(),
                "method(s)".into(),
                "paper method".into(),
            ],
            &rows,
        )
    );
}
