//! Ablation of the prefetcher extension (not in the paper's Table 1):
//! cycles per benchmark with no / next-line / stride prefetching on the
//! baseline configuration.

use bench::{banner, parse_common_args};
use cpusim::core::Core;
use cpusim::prefetch::PrefetcherKind;
use cpusim::trace::TraceGenerator;
use cpusim::{Benchmark, CpuConfig};
use dse::report::{f, render_table};

fn main() {
    let (scale, seed, _) = parse_common_args();
    let _run = banner("ablation: data prefetchers (library extension)", scale);

    let insts = scale.sim_options().instructions;
    let cfg = CpuConfig::baseline();
    let mut rows = Vec::new();
    for b in Benchmark::PRESENTED {
        let mut cycles = Vec::new();
        let mut issued = Vec::new();
        for kind in PrefetcherKind::ALL {
            let mut gen = TraceGenerator::for_benchmark(b, seed);
            let mut core = Core::with_prefetcher(cfg, kind);
            let s = core.run(&mut gen, insts);
            cycles.push(s.cycles as f64);
            issued.push(core.prefetches_issued());
        }
        let speedup = |i: usize| 100.0 * (cycles[0] - cycles[i]) / cycles[0];
        rows.push(vec![
            b.name().to_string(),
            f(cycles[0], 0),
            f(speedup(1), 2),
            issued[1].to_string(),
            f(speedup(2), 2),
            issued[2].to_string(),
        ]);
    }
    print!(
        "{}",
        render_table(
            &[
                "benchmark".into(),
                "base cycles".into(),
                "next-line gain %".into(),
                "pf issued".into(),
                "stride gain %".into(),
                "pf issued".into(),
            ],
            &rows,
        )
    );
    println!(
        "\nexpectation: streaming fp codes (applu, swim-like) benefit most; \
         pointer-chasing mcf barely moves (its misses are unpredictable)."
    );
}
