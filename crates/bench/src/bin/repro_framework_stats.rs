//! Reproduces the §4.1 framework statistics:
//!
//! * per-benchmark cycle range and variation over the design space
//!   (paper: Applu/1.62/0.16, Equake/1.73/0.19, Gcc/5.27/0.33,
//!   Mesa/2.22/0.19, Mcf/6.38/0.71), and
//! * per-family SPEC record counts / rating range / variation
//!   (paper: Opteron 138/1.40/0.08 … Xeon 216/1.34/0.09).

use bench::{banner, parse_common_args};
use cpusim::runner::{summarize_sweep, sweep_design_space};
use cpusim::Benchmark;
use dse::report::{f, render_table};
use specdata::{AnnouncementSet, ProcessorFamily};

fn main() {
    let (scale, seed, _) = parse_common_args();
    let _run = banner("§4.1 framework statistics", scale);
    let space = scale.space();
    let mut sim = scale.sim_options();
    sim.seed = seed;

    let paper: &[(&str, f64, f64)] = &[
        ("applu", 1.62, 0.16),
        ("equake", 1.73, 0.19),
        ("gcc", 5.27, 0.33),
        ("mesa", 2.22, 0.19),
        ("mcf", 6.38, 0.71),
    ];

    let mut rows = Vec::new();
    for b in Benchmark::PRESENTED {
        let results = sweep_design_space(&space, b, &sim);
        let s = summarize_sweep(&results);
        let (pr, pv) = paper
            .iter()
            .find(|(n, ..)| *n == b.name())
            .map(|&(_, r, v)| (r, v))
            .expect("paper row");
        rows.push(vec![
            b.name().to_string(),
            f(s.range, 2),
            f(pr, 2),
            f(s.variation, 2),
            f(pv, 2),
        ]);
    }
    println!(
        "Simulated design-space statistics ({} configs):",
        space.len()
    );
    print!(
        "{}",
        render_table(
            &[
                "benchmark".into(),
                "range".into(),
                "paper range".into(),
                "variation".into(),
                "paper var".into(),
            ],
            &rows,
        )
    );

    println!("\nSPEC announcement populations:");
    let mut rows = Vec::new();
    for fam in ProcessorFamily::ALL {
        let set = AnnouncementSet::generate(fam, seed);
        let (n, range, var) = set.summary();
        let p = fam.paper_stats();
        rows.push(vec![
            fam.name().to_string(),
            n.to_string(),
            p.records.to_string(),
            f(range, 2),
            f(p.range, 2),
            f(var, 2),
            f(p.variation, 2),
        ]);
    }
    print!(
        "{}",
        render_table(
            &[
                "family".into(),
                "records".into(),
                "paper rec".into(),
                "range".into(),
                "paper range".into(),
                "variation".into(),
                "paper var".into(),
            ],
            &rows,
        )
    );
}
