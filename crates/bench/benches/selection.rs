//! Selection-solver cost: incremental normal-equations engine vs the
//! from-scratch reference drivers, plus the cross-validated error
//! estimate that dominates the §3.3 model-selection protocol.
//!
//! The incremental path must be *bit-identical* in its decisions: before
//! any timing, every method's active set is asserted equal between the
//! two drivers and the coefficients equal to 1e-10, so the speedup
//! reported here is never bought with a different answer.

use criterion::{criterion_group, criterion_main, Criterion};
use linalg::Matrix;
use mlmodels::select::{self, SelectionMethod, Thresholds};
use mlmodels::{crossval, ModelKind, Table};
use std::hint::black_box;
use std::time::Instant;

/// Rows in the synthetic selection problem (~3 % sample of the paper's
/// full 2900-point space).
const ROWS: usize = 120;
/// Predictor count, matching the paper's ~24-parameter design space.
const COLS: usize = 24;

/// Deterministic design matrix with a handful of truly predictive
/// columns, several correlated shadows, and noise columns — enough
/// structure that stepwise runs multiple add/reconsider rounds.
fn design() -> (Matrix, Vec<f64>) {
    let x = Matrix::from_fn(ROWS, COLS, |i, j| {
        let base = (((i * 13 + j * 7 + 3) % 31) as f64) / 31.0;
        if j % 5 == 4 {
            // Shadow column: correlated with its neighbour but not
            // collinear, to exercise the pivot guard.
            let prev = (((i * 13 + (j - 1) * 7 + 3) % 31) as f64) / 31.0;
            0.7 * prev + 0.3 * base
        } else {
            base
        }
    });
    let y: Vec<f64> = (0..ROWS)
        .map(|i| {
            2.0 + 1.5 * x[(i, 0)] - 0.8 * x[(i, 3)] + 0.4 * x[(i, 7)] + 0.2 * x[(i, 12)]
                - 0.1 * x[(i, 19)]
                + 0.05 * ((((i * 17 + 5) % 23) as f64) / 23.0 - 0.5)
        })
        .collect();
    (x, y)
}

/// Training table for the cross-validation benchmark.
fn cv_table() -> Table {
    let (x, y) = design();
    let mut t = Table::new();
    for j in 0..COLS {
        t.add_numeric(format!("p{j}"), (0..ROWS).map(|i| x[(i, j)]).collect());
    }
    t.set_target(y);
    t
}

/// Assert the incremental driver's answers are bit-identical to the
/// reference, and record one representative timing per driver into
/// telemetry counters (visible in `--metrics-out` manifests).
fn assert_equivalence_and_record(x: &Matrix, y: &[f64]) {
    for (name, method) in [
        ("forward", SelectionMethod::Forward),
        ("backward", SelectionMethod::Backward),
        ("stepwise", SelectionMethod::Stepwise),
    ] {
        let t0 = Instant::now();
        let fast = select::try_select(x, y, method, Thresholds::default()).expect("incremental");
        let fast_ns = t0.elapsed().as_nanos() as u64;
        let t1 = Instant::now();
        let refr =
            select::reference::try_select(x, y, method, Thresholds::default()).expect("reference");
        let ref_ns = t1.elapsed().as_nanos() as u64;
        assert_eq!(fast.active, refr.active, "{name}: active sets diverged");
        let tol = 1e-10 * (1.0 + fast.intercept.abs());
        assert!(
            (fast.intercept - refr.intercept).abs() <= tol,
            "{name}: intercept diverged"
        );
        for (a, b) in fast.coefs.iter().zip(&refr.coefs) {
            assert!(
                (a - b).abs() <= 1e-10 * (1.0 + a.abs()),
                "{name}: coefficient diverged"
            );
        }
        telemetry::counter_add(&format!("bench/select_{name}_incremental_ns"), fast_ns);
        telemetry::counter_add(&format!("bench/select_{name}_reference_ns"), ref_ns);
    }
}

fn bench_selection(c: &mut Criterion) {
    let (x, y) = design();
    assert_equivalence_and_record(&x, &y);

    let mut group = c.benchmark_group("selection");
    group.sample_size(20);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for (name, method) in [
        ("forward", SelectionMethod::Forward),
        ("backward", SelectionMethod::Backward),
        ("stepwise", SelectionMethod::Stepwise),
    ] {
        group.bench_function(format!("{name}_incremental"), |b| {
            b.iter(|| black_box(select::try_select(&x, &y, method, Thresholds::default())))
        });
        group.bench_function(format!("{name}_reference"), |b| {
            b.iter(|| {
                black_box(select::reference::try_select(
                    &x,
                    &y,
                    method,
                    Thresholds::default(),
                ))
            })
        });
    }
    group.finish();
}

fn bench_cv(c: &mut Criterion) {
    let table = cv_table();
    let mut group = c.benchmark_group("cv");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for kind in [ModelKind::LrS, ModelKind::LrB] {
        group.bench_function(format!("estimate_{}", kind.abbrev()), |b| {
            b.iter(|| black_box(crossval::try_estimate_error(kind, &table, 7)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_selection, bench_cv);
criterion_main!(benches);
