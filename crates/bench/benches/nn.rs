//! Neural-network hot-loop cost: the batched matrix-form RProp gradient
//! and forward pass vs the per-sample scalar oracle, plus the linalg
//! kernels under each SIMD backend.
//!
//! The scalar path is selected through the same `PERFPREDICT_NN_SCALAR`
//! switch the equivalence tests use, so the two benchmarks run the exact
//! code paths that are proven bit-identical in `mlmodels::nn`'s tests.
//! The kernel benchmarks force the backend through `simd::with_backend`
//! — the same thread-local override the linalg bit-identity proptests
//! use — so `matmul_avx2` vs `matmul_scalar` is the measured cost of the
//! AVX2 kernels against the verbatim scalar oracle on identical inputs.
//! Before timing, equivalence is re-asserted on this benchmark's data
//! for both switches: batched-vs-scalar training and avx2-vs-scalar
//! kernels must be bit-identical or the bench aborts.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use linalg::Matrix;
use mlmodels::nn::{Mlp, TrainAlgo, TrainConfig};
use std::hint::black_box;
use std::time::Instant;

const ROWS: usize = 150;
const COLS: usize = 24;
const HIDDEN: [usize; 1] = [16];
const EPOCHS: usize = 30;

fn design() -> (Matrix, Vec<f64>) {
    let x = Matrix::from_fn(ROWS, COLS, |i, j| {
        (((i * 7 + j * 13 + 5) % 29) as f64) / 29.0
    });
    let y: Vec<f64> = (0..ROWS)
        .map(|i| 0.2 + 0.5 * x[(i, 0)] + 0.25 * x[(i, 3)] * x[(i, 9)] - 0.15 * x[(i, 17)])
        .collect();
    (x, y)
}

fn rprop_config() -> TrainConfig {
    TrainConfig {
        algo: TrainAlgo::Rprop,
        epochs: EPOCHS,
        seed: 7,
        ..TrainConfig::default()
    }
}

/// Run `f` with the scalar-oracle switch set, restoring it afterwards.
fn with_scalar_oracle<T>(f: impl FnOnce() -> T) -> T {
    std::env::set_var("PERFPREDICT_NN_SCALAR", "1");
    let out = f();
    std::env::remove_var("PERFPREDICT_NN_SCALAR");
    out
}

/// Train one net per path and assert bitwise-equal predictions, recording
/// one representative timing per path into telemetry counters.
fn assert_equivalence_and_record(x: &Matrix, y: &[f64]) {
    let cfg = rprop_config();
    let t0 = Instant::now();
    let mut batched = Mlp::new(COLS, &HIDDEN, cfg.seed);
    batched.try_train(x, y, &cfg).expect("batched training");
    let batched_ns = t0.elapsed().as_nanos() as u64;
    let (scalar, scalar_ns) = with_scalar_oracle(|| {
        let t1 = Instant::now();
        let mut net = Mlp::new(COLS, &HIDDEN, cfg.seed);
        net.try_train(x, y, &cfg).expect("scalar training");
        (net, t1.elapsed().as_nanos() as u64)
    });
    let pb = batched.predict(x);
    let ps = with_scalar_oracle(|| scalar.predict(x));
    for (a, b) in pb.iter().zip(&ps) {
        assert_eq!(a.to_bits(), b.to_bits(), "batched/scalar paths diverged");
    }
    telemetry::counter_add("bench/nn_rprop_batched_ns", batched_ns);
    telemetry::counter_add("bench/nn_rprop_scalar_ns", scalar_ns);
}

/// Assert the AVX2 kernels are bit-identical to the scalar oracle on
/// this benchmark's shapes, then return whether AVX2 is even available
/// (on non-x86 hosts the "avx2" benches silently measure scalar, so we
/// skip them instead of publishing a misleading number).
fn assert_kernel_equivalence(x: &Matrix, w: &Matrix, bias: &[f64]) -> bool {
    let simd_mm = simd::with_backend(simd::Backend::Avx2, || x.matmul_tn(x));
    let scalar_mm = simd::with_backend(simd::Backend::Scalar, || x.matmul_tn(x));
    for (a, b) in simd_mm.as_slice().iter().zip(scalar_mm.as_slice()) {
        assert_eq!(a.to_bits(), b.to_bits(), "matmul_tn kernels diverged");
    }
    let simd_aff = simd::with_backend(simd::Backend::Avx2, || x.affine_nt(w, bias));
    let scalar_aff = simd::with_backend(simd::Backend::Scalar, || x.affine_nt(w, bias));
    for (a, b) in simd_aff.as_slice().iter().zip(scalar_aff.as_slice()) {
        assert_eq!(a.to_bits(), b.to_bits(), "affine_nt kernels diverged");
    }
    simd::avx2_available()
}

fn bench_nn(c: &mut Criterion) {
    let (x, y) = design();
    assert_equivalence_and_record(&x, &y);
    let cfg = rprop_config();

    let mut group = c.benchmark_group("nn");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.bench_function(format!("rprop_{EPOCHS}ep_batched"), |b| {
        b.iter_batched(
            || Mlp::new(COLS, &HIDDEN, cfg.seed),
            |mut net| black_box(net.try_train(&x, &y, &cfg)),
            BatchSize::LargeInput,
        )
    });
    group.bench_function(format!("rprop_{EPOCHS}ep_scalar"), |b| {
        with_scalar_oracle(|| {
            b.iter_batched(
                || Mlp::new(COLS, &HIDDEN, cfg.seed),
                |mut net| black_box(net.try_train(&x, &y, &cfg)),
                BatchSize::LargeInput,
            )
        })
    });

    let mut trained = Mlp::new(COLS, &HIDDEN, cfg.seed);
    trained.try_train(&x, &y, &cfg).expect("training");
    group.bench_function("predict_batched", |b| {
        b.iter(|| black_box(trained.predict(&x)))
    });
    group.bench_function("predict_scalar", |b| {
        with_scalar_oracle(|| b.iter(|| black_box(trained.predict(&x))))
    });

    // Linalg kernel microbenches: the gradient-shaped `matmul_tn` and
    // the forward-pass `affine_nt` under each backend. The scalar rows
    // always run (they are the oracle everywhere); the avx2 rows run
    // only where the CPU has the instructions, so a missing
    // `kernel_*_avx2` entry in BENCH_nn.json means "non-x86 runner",
    // not "bench deleted".
    let w = Matrix::from_fn(HIDDEN[0], COLS, |i, j| {
        (((i * 11 + j * 3 + 1) % 17) as f64) / 17.0 - 0.5
    });
    let bias: Vec<f64> = (0..HIDDEN[0]).map(|o| 0.1 * o as f64 - 0.4).collect();
    let avx2 = assert_kernel_equivalence(&x, &w, &bias);
    group.bench_function("kernel_matmul_tn_scalar", |b| {
        simd::with_backend(simd::Backend::Scalar, || {
            b.iter(|| black_box(x.matmul_tn(&x)))
        })
    });
    group.bench_function("kernel_affine_nt_scalar", |b| {
        simd::with_backend(simd::Backend::Scalar, || {
            b.iter(|| black_box(x.affine_nt(&w, &bias)))
        })
    });
    if avx2 {
        group.bench_function("kernel_matmul_tn_avx2", |b| {
            simd::with_backend(simd::Backend::Avx2, || {
                b.iter(|| black_box(x.matmul_tn(&x)))
            })
        });
        group.bench_function("kernel_affine_nt_avx2", |b| {
            simd::with_backend(simd::Backend::Avx2, || {
                b.iter(|| black_box(x.affine_nt(&w, &bias)))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_nn);
criterion_main!(benches);
