//! Design-space sweep scaling: wall time of a Rayon-parallel sweep at
//! different space sizes. Together with `simulator.rs` this quantifies why
//! sampled DSE matters: full-space cost grows linearly in the number of
//! configurations, while the surrogate needs only the sampled fraction.

use cpusim::{sweep_design_space, Benchmark, DesignSpace, SimOptions};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

fn bench_sweep(c: &mut Criterion) {
    let full = DesignSpace::table1();
    let opts = SimOptions {
        instructions: 4_000,
        ..Default::default()
    };
    let mut group = c.benchmark_group("sweep");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(6));
    for &n in &[16usize, 64, 256] {
        let sub = DesignSpace::from_configs(full.configs()[..n].to_vec());
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &sub, |b, sub| {
            b.iter(|| black_box(sweep_design_space(sub, Benchmark::Applu, &opts)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sweep);
criterion_main!(benches);
