//! Serving-layer throughput: JSONL replay through the batched prediction
//! engine (DESIGN.md §9) against pre-trained artifacts.
//!
//! Training and workload synthesis happen once outside the timed region,
//! so the numbers are pure serve cost — parse, cache probe, batch
//! assembly, matrix-form predict, ordered emit. Two stream shapes per
//! model: `cached` (2 000 requests over 32 distinct configs, the
//! steady-state surrogate-query case) and `cold` (cache disabled, every
//! request pays a prediction). Before timing, the harness asserts the
//! replay is byte-identical across 1 and 4 worker threads.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use mlmodels::table::Table;
use mlmodels::{try_train, ModelArtifact, ModelKind};
use serve::{generate_requests, serve_jsonl, ServeConfig};
use std::hint::black_box;
use std::time::Instant;

const REQUESTS: usize = 2_000;
const DISTINCT: usize = 32;

/// Deterministic training table shaped like the paper's design space:
/// numeric lattice columns, a flag, a categorical, linear-ish target.
fn training_table() -> Table {
    let n = 256;
    let l1 = [8.0, 16.0, 32.0, 64.0];
    let l2 = [256.0, 512.0, 1024.0, 2048.0];
    let width = [2.0, 4.0, 8.0];
    let xs1: Vec<f64> = (0..n).map(|i| l1[i % l1.len()]).collect();
    let xs2: Vec<f64> = (0..n).map(|i| l2[(i / 4) % l2.len()]).collect();
    let xs3: Vec<f64> = (0..n).map(|i| width[(i / 16) % width.len()]).collect();
    let flags: Vec<bool> = (0..n).map(|i| (i / 48) % 2 == 0).collect();
    let codes: Vec<u32> = (0..n).map(|i| ((i / 96) % 3) as u32).collect();
    let y: Vec<f64> = (0..n)
        .map(|i| {
            1e6 / (xs1[i].log2() + 0.01 * xs2[i].sqrt() + xs3[i])
                + if flags[i] { -2e4 } else { 0.0 }
                + codes[i] as f64 * 1e4
        })
        .collect();
    let mut t = Table::new();
    t.add_numeric("l1_kb", xs1)
        .add_numeric("l2_kb", xs2)
        .add_numeric("width", xs3)
        .add_flag("wrong_path", flags)
        .add_categorical(
            "bpred",
            codes,
            vec!["Bimodal".into(), "TwoLevel".into(), "Perfect".into()],
        )
        .set_target(y);
    t
}

fn config(cache_cap: usize, workers: usize) -> ServeConfig {
    ServeConfig {
        cache_cap,
        workers,
        ..ServeConfig::default()
    }
}

/// Replay once per worker count and assert byte-identical output, then
/// record one representative timing into telemetry counters.
fn assert_equivalence_and_record(artifact: &ModelArtifact, stream: &str, tag: &str) {
    let t0 = Instant::now();
    let (base, stats) = serve_jsonl(artifact.clone(), config(4096, 1), stream).expect("replay");
    telemetry::counter_add(
        &format!("bench/serve_{tag}_2k_ns"),
        t0.elapsed().as_nanos() as u64,
    );
    assert_eq!(stats.requests as usize, REQUESTS, "every request answered");
    assert!(stats.cache_hits > 0, "cache-heavy stream must hit");
    for workers in [2, 4] {
        let (out, _) = serve_jsonl(artifact.clone(), config(4096, workers), stream)
            .expect("multi-worker replay");
        assert_eq!(base, out, "{tag}: output differs at {workers} workers");
    }
}

fn bench_serve(c: &mut Criterion) {
    let table = training_table();
    let artifacts: Vec<(&str, ModelArtifact)> = [("lrb", ModelKind::LrB), ("nnq", ModelKind::NnQ)]
        .into_iter()
        .map(|(tag, kind)| {
            let model = try_train(kind, &table, 0x5E2).expect("training");
            (tag, ModelArtifact::from_training(model, &table))
        })
        .collect();
    let stream =
        generate_requests(&artifacts[0].1.schema, REQUESTS, DISTINCT, 0x5E2).expect("workload");
    for (tag, artifact) in &artifacts {
        assert_equivalence_and_record(artifact, &stream, tag);
    }

    let mut group = c.benchmark_group("serve");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(5));
    for (tag, artifact) in &artifacts {
        // Steady state: 32 distinct configs, ~98% of requests hit the LRU.
        group.bench_function(format!("replay_cached_{tag}"), |b| {
            b.iter_batched(
                || artifact.clone(),
                |a| black_box(serve_jsonl(a, config(4096, 2), &stream)),
                BatchSize::LargeInput,
            )
        });
        // Cache disabled: every request pays parse + batch + predict.
        group.bench_function(format!("replay_cold_{tag}"), |b| {
            b.iter_batched(
                || artifact.clone(),
                |a| black_box(serve_jsonl(a, config(0, 2), &stream)),
                BatchSize::LargeInput,
            )
        });
    }
    // Artifact decode path: bytes -> validated model, the per-process
    // startup cost of a serve worker.
    let bytes = artifacts[1].1.to_bytes().expect("serialize");
    group.bench_function("artifact_load_nnq", |b| {
        b.iter(|| black_box(ModelArtifact::from_bytes("<bench>", black_box(&bytes))))
    });
    group.finish();
}

criterion_group!(benches, bench_serve);
criterion_main!(benches);
