//! Serving-layer throughput: JSONL replay through the batched prediction
//! engine (DESIGN.md §9) against pre-trained artifacts.
//!
//! Training and workload synthesis happen once outside the timed region,
//! so the numbers are pure serve cost — parse, cache probe, batch
//! assembly, matrix-form predict, ordered emit. Two stream shapes per
//! model: `cached` (2 000 requests over 32 distinct configs, the
//! steady-state surrogate-query case) and `cold` (cache disabled, every
//! request pays a prediction). Before timing, the harness asserts the
//! replay is byte-identical across 1 and 4 worker threads, and that the
//! compiled specialized predictors (the default serve path) produce
//! byte-identical output to the interpreted transform-then-predict
//! oracle selected by `PERFPREDICT_SERVE=interpreted` — the same switch
//! `serve::core`'s tests use. The `replay_cold_interp_*` rows time that
//! oracle so BENCH_serve.json carries the compiled-vs-interpreted
//! speedup alongside the equivalence certificate.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use mlmodels::table::Table;
use mlmodels::{try_train, ModelArtifact, ModelKind};
use serve::{
    generate_requests, serve_jsonl, Daemon, DaemonConfig, Registry, RegistryConfig, ServeConfig,
};
use std::hint::black_box;
use std::sync::{Arc, Mutex};
use std::time::Instant;

const REQUESTS: usize = 2_000;
const DISTINCT: usize = 32;

/// Deterministic training table shaped like the paper's design space:
/// numeric lattice columns, a flag, a categorical, linear-ish target.
fn training_table() -> Table {
    let n = 256;
    let l1 = [8.0, 16.0, 32.0, 64.0];
    let l2 = [256.0, 512.0, 1024.0, 2048.0];
    let width = [2.0, 4.0, 8.0];
    let xs1: Vec<f64> = (0..n).map(|i| l1[i % l1.len()]).collect();
    let xs2: Vec<f64> = (0..n).map(|i| l2[(i / 4) % l2.len()]).collect();
    let xs3: Vec<f64> = (0..n).map(|i| width[(i / 16) % width.len()]).collect();
    let flags: Vec<bool> = (0..n).map(|i| (i / 48) % 2 == 0).collect();
    let codes: Vec<u32> = (0..n).map(|i| ((i / 96) % 3) as u32).collect();
    let y: Vec<f64> = (0..n)
        .map(|i| {
            1e6 / (xs1[i].log2() + 0.01 * xs2[i].sqrt() + xs3[i])
                + if flags[i] { -2e4 } else { 0.0 }
                + codes[i] as f64 * 1e4
        })
        .collect();
    let mut t = Table::new();
    t.add_numeric("l1_kb", xs1)
        .add_numeric("l2_kb", xs2)
        .add_numeric("width", xs3)
        .add_flag("wrong_path", flags)
        .add_categorical(
            "bpred",
            codes,
            vec!["Bimodal".into(), "TwoLevel".into(), "Perfect".into()],
        )
        .set_target(y);
    t
}

fn config(cache_cap: usize, workers: usize) -> ServeConfig {
    ServeConfig {
        cache_cap,
        workers,
        ..ServeConfig::default()
    }
}

/// Replay `stream` through a fresh daemon instance (framed protocol,
/// admission queue, reader thread) over in-memory transport. Saves the
/// artifact once outside the timed region; each iteration pays daemon
/// construction + registry routing + the full request loop, i.e. the
/// daemon's overhead over the bare engine replay above.
fn daemon_replay(artifact_path: &str, stream: &str) -> serve::DaemonStats {
    let mut registry = Registry::new(RegistryConfig::default());
    registry.load("m", artifact_path).expect("registry load");
    let config = DaemonConfig {
        window: 64,
        queue_cap: 4096,
        workers: 2,
        deadline_ms: None,
        max_frame_bytes: 1 << 20,
        default_model: Some("m".to_string()),
    };
    let mut daemon = Daemon::new(config, registry).expect("daemon config");
    let out: Arc<Mutex<Vec<u8>>> = Arc::new(Mutex::new(Vec::new()));
    daemon
        .run(
            std::io::Cursor::new(stream.as_bytes().to_vec()),
            Arc::clone(&out),
        )
        .expect("daemon replay")
}

/// Run `f` with the interpreted-oracle switch set, restoring it after.
/// `serve::core` reads the variable per prediction window, so toggling
/// it in-process flips the path without rebuilding the engine.
fn with_interpreted_oracle<T>(f: impl FnOnce() -> T) -> T {
    std::env::set_var("PERFPREDICT_SERVE", "interpreted");
    let out = f();
    std::env::remove_var("PERFPREDICT_SERVE");
    out
}

/// Replay once per worker count and assert byte-identical output — both
/// across worker counts and between the compiled predictors and the
/// interpreted oracle — then record one representative timing into
/// telemetry counters.
fn assert_equivalence_and_record(artifact: &ModelArtifact, stream: &str, tag: &str) {
    let t0 = Instant::now();
    let (base, stats) = serve_jsonl(artifact.clone(), config(4096, 1), stream).expect("replay");
    telemetry::counter_add(
        &format!("bench/serve_{tag}_2k_ns"),
        t0.elapsed().as_nanos() as u64,
    );
    assert_eq!(stats.requests as usize, REQUESTS, "every request answered");
    assert!(stats.cache_hits > 0, "cache-heavy stream must hit");
    for workers in [2, 4] {
        let (out, _) = serve_jsonl(artifact.clone(), config(4096, workers), stream)
            .expect("multi-worker replay");
        assert_eq!(base, out, "{tag}: output differs at {workers} workers");
    }
    let (interp, _) = with_interpreted_oracle(|| {
        serve_jsonl(artifact.clone(), config(4096, 1), stream).expect("interpreted replay")
    });
    assert_eq!(
        base, interp,
        "{tag}: compiled predictor differs from the interpreted oracle"
    );
}

fn bench_serve(c: &mut Criterion) {
    let table = training_table();
    let artifacts: Vec<(&str, ModelArtifact)> = [("lrb", ModelKind::LrB), ("nnq", ModelKind::NnQ)]
        .into_iter()
        .map(|(tag, kind)| {
            let model = try_train(kind, &table, 0x5E2).expect("training");
            (tag, ModelArtifact::from_training(model, &table))
        })
        .collect();
    let stream =
        generate_requests(&artifacts[0].1.schema, REQUESTS, DISTINCT, 0x5E2).expect("workload");
    for (tag, artifact) in &artifacts {
        assert_equivalence_and_record(artifact, &stream, tag);
    }

    let mut group = c.benchmark_group("serve");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(5));
    for (tag, artifact) in &artifacts {
        // Steady state: 32 distinct configs, ~98% of requests hit the LRU.
        group.bench_function(format!("replay_cached_{tag}"), |b| {
            b.iter_batched(
                || artifact.clone(),
                |a| black_box(serve_jsonl(a, config(4096, 2), &stream)),
                BatchSize::LargeInput,
            )
        });
        // Cache disabled: every request pays parse + batch + predict.
        group.bench_function(format!("replay_cold_{tag}"), |b| {
            b.iter_batched(
                || artifact.clone(),
                |a| black_box(serve_jsonl(a, config(0, 2), &stream)),
                BatchSize::LargeInput,
            )
        });
        // Same cold replay through the interpreted oracle: the
        // compiled-vs-interpreted speedup is replay_cold_interp /
        // replay_cold on the same stream, proven bit-identical above.
        group.bench_function(format!("replay_cold_interp_{tag}"), |b| {
            with_interpreted_oracle(|| {
                b.iter_batched(
                    || artifact.clone(),
                    |a| black_box(serve_jsonl(a, config(0, 2), &stream)),
                    BatchSize::LargeInput,
                )
            })
        });
    }
    // Artifact decode path: bytes -> validated model, the per-process
    // startup cost of a serve worker.
    let bytes = artifacts[1].1.to_bytes().expect("serialize");
    group.bench_function("artifact_load_nnq", |b| {
        b.iter(|| black_box(ModelArtifact::from_bytes("<bench>", black_box(&bytes))))
    });

    // Daemon mode: the same cached replay through the persistent
    // request loop — framed protocol parse, admission queue, registry
    // routing — measuring the daemon's overhead over the bare engine.
    let dir = std::env::temp_dir().join(format!("perfpredict-bench-daemon-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let lrb_path = dir.join("lrb.ppmodel").to_string_lossy().into_owned();
    artifacts[0].1.save(&lrb_path).expect("save artifact");
    let warm = daemon_replay(&lrb_path, &stream);
    assert_eq!(
        warm.requests as usize, REQUESTS,
        "daemon answers every request"
    );
    assert_eq!(warm.shed, 0, "uncontended replay must not shed");
    group.bench_function("daemon_replay_cached_lrb", |b| {
        b.iter(|| black_box(daemon_replay(&lrb_path, &stream)))
    });
    group.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group!(benches, bench_serve);
criterion_main!(benches);
