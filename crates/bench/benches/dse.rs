//! End-to-end sampled-DSE cost at the paper's 1 % sampling rate: sweep
//! the Medium design space once (setup, untimed), then time the full
//! sample → train → cross-validate → predict-the-space pipeline.
//!
//! This is the macro-benchmark behind the selection speedup claim: the
//! linear-regression methods route through `try_select`'s incremental
//! Gram engine and the shared-Gram CV cache, so their end-to-end cost
//! here moves with the `selection` micro-benchmarks.

use bench::Scale;
use cpusim::runner::sweep_design_space;
use cpusim::Benchmark;
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use dse::adaptive::{try_run_adaptive, AdaptiveConfig, EvalMode};
use dse::sampled::{try_run_sampled_dse, SampledConfig, SamplingStrategy};
use mlmodels::ModelKind;
use std::hint::black_box;
use std::time::Instant;

fn config(sim: cpusim::SimOptions, models: Vec<ModelKind>) -> SampledConfig {
    SampledConfig {
        sampling_rates: vec![0.01],
        strategy: SamplingStrategy::Random,
        models,
        sim,
        seed: 0xD5E,
        estimate_errors: true,
        export_models: None,
    }
}

fn bench_dse(c: &mut Criterion) {
    let scale = Scale::Medium;
    let space = scale.space();
    let sim = scale.sim_options();
    // One sweep shared by every iteration: the simulator's cost is covered
    // by the `simulator` benchmark; here only the modelling pipeline is
    // timed.
    let sweep = sweep_design_space(&space, Benchmark::Gcc, &sim);

    // Record one representative end-to-end timing into telemetry counters
    // (visible in `--metrics-out` manifests).
    let t0 = Instant::now();
    let run = try_run_sampled_dse(
        Benchmark::Gcc,
        &space,
        &config(sim, vec![ModelKind::LrS, ModelKind::LrB]),
        Some(sweep.clone()),
        None,
    )
    .expect("sampled DSE");
    telemetry::counter_add("bench/dse_lr_1pct_ns", t0.elapsed().as_nanos() as u64);
    assert!(
        !run.points.is_empty(),
        "sampled DSE produced no measurements"
    );

    let mut group = c.benchmark_group("dse");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(5));
    for (name, models) in [
        ("sampled_1pct_lr", vec![ModelKind::LrS, ModelKind::LrB]),
        ("sampled_1pct_nnq", vec![ModelKind::NnQ]),
    ] {
        let cfg = config(sim, models);
        group.bench_function(name, |b| {
            b.iter_batched(
                || sweep.clone(),
                |sw| {
                    black_box(try_run_sampled_dse(
                        Benchmark::Gcc,
                        &space,
                        &cfg,
                        Some(sw),
                        None,
                    ))
                },
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();

    // Adaptive (query-by-committee) trajectory at equal budget against the
    // one-shot random baseline, on a precomputed sweep so only the
    // modelling + acquisition loop is timed.
    let quick_space = Scale::Quick.space();
    let quick_sim = Scale::Quick.sim_options();
    let quick_sweep = sweep_design_space(&quick_space, Benchmark::Gcc, &quick_sim);
    let acfg = AdaptiveConfig {
        initial: 16,
        batch: 8,
        rounds: 2,
        committee: 3,
        eval: EvalMode::FullSpace,
        member: ModelKind::NnS,
        final_model: ModelKind::NnS,
        sim: quick_sim,
        seed: 0xADA,
        ..Default::default()
    };
    let mut agroup = c.benchmark_group("dse");
    agroup.sample_size(10);
    agroup.warm_up_time(std::time::Duration::from_millis(500));
    agroup.measurement_time(std::time::Duration::from_secs(5));
    agroup.bench_function("adaptive_vs_random_quick", |b| {
        b.iter_batched(
            || quick_sweep.clone(),
            |sw| {
                black_box(try_run_adaptive(
                    Benchmark::Gcc,
                    &quick_space,
                    &acfg,
                    Some(sw),
                    None,
                ))
            },
            BatchSize::LargeInput,
        )
    });
    agroup.finish();
}

criterion_group!(benches, bench_dse);
criterion_main!(benches);
