//! Simulator throughput: cycles simulated per wall second for one
//! configuration per benchmark. This is the per-point cost the predictive
//! models amortize away (the paper: "each element in the design space can
//! take hours to days to simulate" on real workloads).

use cpusim::core::Core;
use cpusim::trace::TraceGenerator;
use cpusim::{Benchmark, CpuConfig};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

const INSTS: u64 = 20_000;

fn bench_simulator(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulate");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(6));
    group.throughput(Throughput::Elements(INSTS));
    for b in [Benchmark::Applu, Benchmark::Gcc, Benchmark::Mcf] {
        group.bench_function(b.name(), |bench| {
            bench.iter(|| {
                let mut gen = TraceGenerator::for_benchmark(b, 99);
                let mut core = Core::new(CpuConfig::baseline());
                black_box(core.run(&mut gen, INSTS))
            })
        });
    }
    group.finish();
}

fn bench_trace_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("trace_gen");
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(4));
    group.throughput(Throughput::Elements(INSTS));
    for b in [Benchmark::Applu, Benchmark::Mcf] {
        group.bench_function(b.name(), |bench| {
            bench.iter(|| {
                let mut gen = TraceGenerator::for_benchmark(b, 99);
                black_box(gen.take_vec(INSTS as usize))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_simulator, bench_trace_generation);
criterion_main!(benches);
