//! Prediction latency: how fast a trained surrogate evaluates design
//! points. This is the paper's payoff — a model evaluates the whole
//! 4608-point space in microseconds-per-point instead of simulator-hours.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use mlmodels::{train, ModelKind, Table};
use std::hint::black_box;

fn tables() -> (Table, Table) {
    let make = |n: usize, off: usize| {
        let mut t = Table::new();
        for j in 0..12 {
            let col: Vec<f64> = (0..n)
                .map(|i| (((i + off) * (j + 2) % 29) as f64) / 29.0)
                .collect();
            t.add_numeric(format!("p{j}"), col);
        }
        let y: Vec<f64> = (0..n)
            .map(|i| 100.0 + ((i + off) % 13) as f64 + 0.5 * ((i + off) % 7) as f64)
            .collect();
        t.set_target(y);
        t
    };
    (make(120, 0), make(1000, 7))
}

fn bench_prediction(c: &mut Criterion) {
    let (train_t, eval_t) = tables();
    let mut group = c.benchmark_group("predict_1000_rows");
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(4));
    group.throughput(Throughput::Elements(eval_t.n_rows() as u64));
    for kind in [ModelKind::LrE, ModelKind::NnS, ModelKind::NnE] {
        let model = train(kind, &train_t, 3);
        group.bench_function(kind.abbrev(), |b| {
            b.iter(|| black_box(model.predict(&eval_t)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_prediction);
criterion_main!(benches);
