//! Model-training cost per method — backs the paper's §3.1/§3.2 claims:
//! linear regression builds "on the order of milliseconds", NN-S "on the
//! order of seconds", and NN-E is "the slowest of all".

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use mlmodels::{train, ModelKind, Table};
use std::hint::black_box;

/// A 24-predictor, 150-row training table shaped like a 3 % design-space
/// sample.
fn sample_table() -> Table {
    let n = 150;
    let mut t = Table::new();
    for j in 0..23 {
        let col: Vec<f64> = (0..n)
            .map(|i| (((i * (j + 3) + j * 7) % 17) as f64) / 17.0)
            .collect();
        t.add_numeric(format!("p{j}"), col);
    }
    t.add_categorical(
        "bpred",
        (0..n).map(|i| (i % 4) as u32).collect(),
        vec![
            "Perfect".into(),
            "Bimodal".into(),
            "2-level".into(),
            "Combination".into(),
        ],
    );
    let y: Vec<f64> = (0..n)
        .map(|i| {
            let a = ((i % 17) as f64) / 17.0;
            let b = ((i % 4) as f64) / 4.0;
            1e6 * (1.0 + 0.5 * a + 0.2 * b + 0.1 * a * b)
        })
        .collect();
    t.set_target(y);
    t
}

fn bench_training(c: &mut Criterion) {
    let table = sample_table();
    let mut group = c.benchmark_group("train");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(6));
    for kind in [
        ModelKind::LrE,
        ModelKind::LrB,
        ModelKind::LrS,
        ModelKind::NnS,
        ModelKind::NnQ,
        ModelKind::NnE,
    ] {
        group.bench_function(kind.abbrev(), |b| {
            b.iter_batched(
                || table.clone(),
                |t| black_box(train(kind, &t, 7)),
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_training);
criterion_main!(benches);
