//! Cross-crate integration tests: the full pipelines the paper's
//! experiments run, at reduced scale.

use perfpredict::cpusim::{
    simulate, sweep_design_space, Benchmark, CpuConfig, DesignSpace, SimOptions,
};
use perfpredict::dse::chrono::{run_chronological, ChronoConfig};
use perfpredict::dse::data::{table_from_announcements, table_from_sweep};
use perfpredict::dse::sampled::{run_sampled_dse, SampledConfig, SamplingStrategy};
use perfpredict::dse::selectbest::select_method_series;
use perfpredict::mlmodels::{train, ModelKind};
use perfpredict::specdata::{AnnouncementSet, ProcessorFamily};

fn small_space(step: usize) -> DesignSpace {
    DesignSpace::from_configs(
        DesignSpace::table1()
            .configs()
            .iter()
            .copied()
            .step_by(step)
            .collect(),
    )
}

#[test]
fn sampled_dse_pipeline_end_to_end() {
    let space = small_space(24); // 192 configs
    let cfg = SampledConfig {
        sampling_rates: vec![0.08],
        strategy: SamplingStrategy::Random,
        models: vec![ModelKind::LrB, ModelKind::NnS],
        sim: SimOptions {
            instructions: 8_000,
            ..Default::default()
        },
        seed: 3,
        estimate_errors: true,
        export_models: None,
    };
    let run = run_sampled_dse(Benchmark::Mesa, &space, &cfg, None);
    assert_eq!(run.space_size, 192);
    assert_eq!(run.points.len(), 2);
    for p in &run.points {
        assert!(p.true_error.is_finite());
        assert!(
            p.true_error < 100.0,
            "{}: {}",
            p.model.abbrev(),
            p.true_error
        );
    }
    let select = select_method_series(&run);
    assert_eq!(select.len(), 1);
    assert!(
        run.points.iter().any(|p| p.model == select[0].chosen),
        "select must pick an evaluated model"
    );
}

#[test]
fn chronological_pipeline_end_to_end() {
    let cfg = ChronoConfig {
        train_year: 2005,
        models: vec![ModelKind::LrE, ModelKind::LrS, ModelKind::NnQ],
        data_seed: 42,
        seed: 5,
        estimate_errors: true,
        export_models: None,
    };
    let r = run_chronological(ProcessorFamily::PentiumD, &cfg);
    assert_eq!(r.points.len(), 3);
    // Paper: "for Pentium D all the models perform about the same and
    // produce roughly 2% error" — we allow a loose band.
    for p in &r.points {
        assert!(
            p.error_mean < 15.0,
            "{} error {} too high for Pentium D",
            p.model.abbrev(),
            p.error_mean
        );
        assert!(p.estimated.is_some());
    }
}

#[test]
fn linear_regression_beats_networks_chronologically() {
    // The paper's §4.3 headline, checked on two families.
    for fam in [ProcessorFamily::Xeon, ProcessorFamily::Opteron2] {
        let cfg = ChronoConfig {
            train_year: 2005,
            models: vec![ModelKind::LrE, ModelKind::NnQ, ModelKind::NnM],
            data_seed: 42,
            seed: 5,
            estimate_errors: false,
            export_models: None,
        };
        let r = run_chronological(fam, &cfg);
        let lr = r.points.iter().find(|p| p.model == ModelKind::LrE).unwrap();
        let best_nn = r
            .points
            .iter()
            .filter(|p| !p.model.is_linear())
            .map(|p| p.error_mean)
            .fold(f64::INFINITY, f64::min);
        assert!(
            lr.error_mean <= best_nn * 1.1,
            "{}: LR-E {:.2}% should not trail the networks ({best_nn:.2}%)",
            fam.name(),
            lr.error_mean
        );
    }
}

#[test]
fn simulator_to_model_roundtrip() {
    // Simulate a handful of configs, train on all of them, and verify the
    // model reproduces the training cycles closely (interpolation sanity).
    let space = small_space(96); // 48 configs
    let sim = SimOptions {
        instructions: 8_000,
        ..Default::default()
    };
    let results = sweep_design_space(&space, Benchmark::Applu, &sim);
    let table = table_from_sweep(&results);
    let model = train(ModelKind::NnM, &table, 11);
    let preds = model.predict(&table);
    let (mape, _) = perfpredict::linalg::stats::mape(&preds, table.target());
    assert!(mape < 10.0, "training-set MAPE {mape}");
}

#[test]
fn announcements_to_model_roundtrip() {
    let set = AnnouncementSet::generate(ProcessorFamily::Opteron4, 42);
    let refs: Vec<_> = set.records.iter().collect();
    let table = table_from_announcements(&refs);
    let model = train(ModelKind::LrE, &table, 1);
    let preds = model.predict(&table);
    let (mape, _) = perfpredict::linalg::stats::mape(&preds, table.target());
    assert!(mape < 5.0, "LR-E in-sample MAPE {mape}");
}

#[test]
fn single_simulation_is_deterministic_across_apis() {
    let cfg = CpuConfig::baseline();
    let opts = SimOptions {
        instructions: 6_000,
        ..Default::default()
    };
    let a = simulate(Benchmark::Equake, cfg, &opts);
    let b = simulate(Benchmark::Equake, cfg, &opts);
    assert_eq!(a.cycles, b.cycles);
    let space = DesignSpace::from_configs(vec![cfg]);
    let sweep = sweep_design_space(&space, Benchmark::Equake, &opts);
    assert_eq!(sweep[0].cycles, a.cycles, "sweep and single-run agree");
}

#[test]
fn perfect_predictor_dominates_in_space() {
    // For every benchmark, the best config with a perfect predictor should
    // be at least as fast as the same config with a bimodal predictor.
    let sim = SimOptions {
        instructions: 6_000,
        ..Default::default()
    };
    for b in [Benchmark::Gcc, Benchmark::Mcf] {
        let mut perfect = CpuConfig::baseline();
        perfect.bpred = perfpredict::cpusim::BranchPredictorKind::Perfect;
        let mut bimodal = CpuConfig::baseline();
        bimodal.bpred = perfpredict::cpusim::BranchPredictorKind::Bimodal;
        let rp = simulate(b, perfect, &sim);
        let rb = simulate(b, bimodal, &sim);
        assert!(
            rp.cycles <= rb.cycles,
            "{}: perfect {} vs bimodal {}",
            b.name(),
            rp.cycles,
            rb.cycles
        );
    }
}
