#!/bin/bash
# Regenerates every table and figure of the paper at full fidelity.
# Outputs land in results/.
set -u
cd "$(dirname "$0")"
SCALE="${1:-full}"
run() {
  name=$1; shift
  echo "=== $name ($(date +%H:%M:%S)) ==="
  cargo run --release -p bench --bin "$name" -- "$@" > "results/$name.txt" 2>&1
  echo "--- done $name"
}
run repro_table1
run repro_fig7  --scale "$SCALE"
run repro_fig8  --scale "$SCALE"
run repro_table2 --scale "$SCALE"
run repro_importance --scale "$SCALE"
run repro_fig2_6 --scale "$SCALE" --all
run repro_table3 --scale "$SCALE"
run repro_framework_stats --scale "$SCALE"
run repro_per_app --scale "$SCALE"
run repro_rolling_years --scale "$SCALE"
run ablation_crossval --scale "$SCALE"
run ablation_sampling --scale "$SCALE"
run ablation_simpoint --scale "$SCALE"
run ablation_prefetch --scale "$SCALE"
run ablation_adaptive --scale "$SCALE"
echo "ALL EXPERIMENTS DONE"
