//! # perfpredict
//!
//! Machine-learning surrogate models for computer-system design-space
//! exploration — a from-scratch Rust reproduction of *Ozisikyilmaz, Memik &
//! Choudhary, "Machine Learning Models to Predict Performance of Computer
//! System Design Alternatives", ICPP 2008*.
//!
//! The paper's idea: instead of simulating (or building) every point of a
//! huge design space, simulate a **1–5 % sample**, train a predictive model
//! — linear regression or a neural network — and let it estimate the rest;
//! or train on **last year's** published SPEC results and predict next
//! year's systems.
//!
//! ## Crate map
//!
//! | crate | role |
//! |---|---|
//! | [`linalg`] | dense matrices, least-squares solvers, special functions, seeded sampling |
//! | [`cpusim`] | trace-driven out-of-order CPU simulator (the SimpleScalar substitute), 4608-point Table-1 design space, SimPoint-style phase analysis |
//! | [`specdata`] | synthetic SPEC CPU2000 announcement database (32 parameters, seven processor families, 1999-2006 trends) |
//! | [`mlmodels`] | the nine Clementine models + NN-S: OLS with Enter/Forward/Backward/Stepwise selection, MLP networks with six training methods, 5×50 % cross-validation |
//! | [`dse`] | the two workflows: sampled design-space exploration and chronological prediction, plus the *select* method |
//! | [`telemetry`] | observability: hierarchical timed spans, rayon-safe counters, progress, console + JSON-lines run manifests |
//! | [`error`] (crate `fault`) | typed error hierarchy, process exit codes, and resumable JSONL checkpoints shared by every fallible layer |
//!
//! ## Quickstart
//!
//! ```no_run
//! use perfpredict::cpusim::{Benchmark, DesignSpace, SimOptions};
//! use perfpredict::dse::sampled::{run_sampled_dse, SampledConfig, SamplingStrategy};
//! use perfpredict::mlmodels::ModelKind;
//!
//! // Simulate the full 4608-point space once, train NN-E on a 1% sample,
//! // and measure its true error over the whole space.
//! let space = DesignSpace::table1();
//! let cfg = SampledConfig {
//!     sampling_rates: vec![0.01],
//!     strategy: SamplingStrategy::Random,
//!     models: vec![ModelKind::NnE],
//!     sim: SimOptions::default(),
//!     seed: 42,
//!     estimate_errors: true,
//!     export_models: None,
//! };
//! let run = run_sampled_dse(Benchmark::Mcf, &space, &cfg, None);
//! let point = run.point(ModelKind::NnE, 0.01).unwrap();
//! println!("NN-E true error at 1% sampling: {:.2}%", point.true_error);
//! ```
//!
//! See `examples/` for runnable end-to-end scenarios and `crates/bench` for
//! the harnesses that regenerate every table and figure in the paper.

pub use cpusim;
pub use dse;
pub use fault as error;
pub use linalg;
pub use mlmodels;
pub use serve;
pub use specdata;
pub use telemetry;
