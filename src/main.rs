//! `perfpredict` — command-line front end for the library.
//!
//! ```text
//! perfpredict simulate  <benchmark>                 one configuration, full stats
//! perfpredict sweep     <benchmark> [--step N]      design-space sweep summary
//! perfpredict sampled   <benchmark> [--rate pct]    sampled-DSE experiment
//! perfpredict chrono    <family>    [--year Y]      chronological prediction
//! perfpredict families                              list SPEC populations
//! perfpredict benchmarks                            list workloads
//! ```

use perfpredict::cpusim::{
    simulate, sweep_design_space, Benchmark, CpuConfig, DesignSpace, SimOptions,
};
use perfpredict::dse::chrono::{run_chronological, ChronoConfig};
use perfpredict::dse::report::{f, render_table};
use perfpredict::dse::sampled::{run_sampled_dse, SampledConfig, SamplingStrategy};
use perfpredict::mlmodels::ModelKind;
use perfpredict::specdata::{AnnouncementSet, ProcessorFamily};

fn usage() -> ! {
    eprintln!(
        "usage: perfpredict <command> [args]\n\
         commands:\n\
           simulate  <benchmark>              simulate one baseline configuration\n\
           sweep     <benchmark> [--step N]   sweep the Table-1 space (default step 16)\n\
           sampled   <benchmark> [--rate P]   sampled DSE at P%% (default 2)\n\
           chrono    <family> [--year Y]      train year Y (default 2005), predict Y+1\n\
           families                           list SPEC processor populations\n\
           benchmarks                         list synthetic workloads"
    );
    std::process::exit(2);
}

fn parse_flag(args: &[String], flag: &str) -> Option<String> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1).cloned())
}

fn benchmark_arg(args: &[String]) -> Benchmark {
    let name = args.first().unwrap_or_else(|| usage());
    Benchmark::from_name(name).unwrap_or_else(|| {
        eprintln!("unknown benchmark '{name}' — try `perfpredict benchmarks`");
        std::process::exit(2);
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else { usage() };
    let rest = &args[1..];

    match cmd.as_str() {
        "benchmarks" => {
            for b in Benchmark::ALL12 {
                let p = b.profile();
                println!(
                    "{:8} {} footprint {:>5} KB, {} blocks",
                    b.name(),
                    if p.is_fp { "fp " } else { "int" },
                    p.data_footprint / 1024,
                    p.code_blocks,
                );
            }
        }
        "families" => {
            for fam in ProcessorFamily::ALL {
                let s = fam.paper_stats();
                let (y0, y1) = fam.year_span();
                println!(
                    "{:10} {:3} records, {}-{}, {} socket(s)",
                    fam.name(),
                    s.records,
                    y0,
                    y1,
                    fam.chips()
                );
            }
        }
        "simulate" => {
            let b = benchmark_arg(rest);
            let r = simulate(b, CpuConfig::baseline(), &SimOptions::default());
            let s = &r.stats;
            println!("{} on the baseline configuration:", b.name());
            println!("  cycles        {:>12.0}", r.cycles);
            println!("  instructions  {:>12}", s.instructions);
            println!("  IPC           {:>12.3}", s.ipc());
            println!("  L1D miss rate {:>12.3}", s.l1d_misses as f64 / s.l1d_accesses.max(1) as f64);
            println!("  L1I miss rate {:>12.3}", s.l1i_misses as f64 / s.l1i_accesses.max(1) as f64);
            println!("  bpred miss    {:>12.3}", s.mispredict_rate());
        }
        "sweep" => {
            let b = benchmark_arg(rest);
            let step: usize =
                parse_flag(rest, "--step").and_then(|v| v.parse().ok()).unwrap_or(16);
            let space = DesignSpace::from_configs(
                DesignSpace::table1().configs().iter().copied().step_by(step).collect(),
            );
            eprintln!("sweeping {} configurations…", space.len());
            let results = sweep_design_space(&space, b, &SimOptions::default());
            let summary = perfpredict::cpusim::runner::summarize_sweep(&results);
            let mut by_cycles: Vec<_> = results.iter().collect();
            by_cycles.sort_by(|a, b| a.cycles.total_cmp(&b.cycles));
            println!(
                "{}: range {:.2}x, variation {:.3}",
                b.name(),
                summary.range,
                summary.variation
            );
            println!("fastest configurations:");
            for r in by_cycles.iter().take(3) {
                let c = &r.config;
                println!(
                    "  {:>10.0} cycles  L1I {:>2}K L1D {:>2}K L2 {:>4}K L3 {} {} w{}",
                    r.cycles,
                    c.l1i.size_kb,
                    c.l1d.size_kb,
                    c.l2.size_kb,
                    if c.l3.is_some() { "8M" } else { " -" },
                    c.bpred.name(),
                    c.width,
                );
            }
        }
        "sampled" => {
            let b = benchmark_arg(rest);
            let rate: f64 =
                parse_flag(rest, "--rate").and_then(|v| v.parse().ok()).unwrap_or(2.0);
            let space = DesignSpace::from_configs(
                DesignSpace::table1().configs().iter().copied().step_by(4).collect(),
            );
            let cfg = SampledConfig {
                sampling_rates: vec![rate / 100.0],
                strategy: SamplingStrategy::Random,
                models: ModelKind::FIGURE2_ORDER.to_vec(),
                sim: SimOptions::default(),
                seed: 42,
                estimate_errors: true,
            };
            eprintln!(
                "sampled DSE on {} ({} configs at {rate}%)…",
                b.name(),
                space.len()
            );
            let run = run_sampled_dse(b, &space, &cfg, None);
            let rows: Vec<Vec<String>> = run
                .points
                .iter()
                .map(|p| {
                    vec![
                        p.model.abbrev().to_string(),
                        f(p.true_error, 2),
                        f(p.estimated.expect("estimated").max, 2),
                    ]
                })
                .collect();
            print!(
                "{}",
                render_table(
                    &["model".into(), "true err %".into(), "estimated %".into()],
                    &rows,
                )
            );
        }
        "chrono" => {
            let name = rest.first().unwrap_or_else(|| usage());
            let fam = ProcessorFamily::from_name(name).unwrap_or_else(|| {
                eprintln!("unknown family '{name}' — try `perfpredict families`");
                std::process::exit(2);
            });
            let year: u32 =
                parse_flag(rest, "--year").and_then(|v| v.parse().ok()).unwrap_or(2005);
            // Guard: the split must exist.
            let probe = AnnouncementSet::generate(fam, 42);
            if probe.year(year).is_empty() || probe.year(year + 1).is_empty() {
                eprintln!("family {} has no {}->{} split", fam.name(), year, year + 1);
                std::process::exit(2);
            }
            let cfg = ChronoConfig {
                train_year: year,
                models: ModelKind::FIGURE7_ORDER.to_vec(),
                data_seed: 42,
                seed: 42,
                estimate_errors: false,
            };
            let r = run_chronological(fam, &cfg);
            println!(
                "{}: train {} ({} records) -> predict {} ({} records)",
                fam.name(),
                year,
                r.n_train,
                year + 1,
                r.n_test
            );
            let rows: Vec<Vec<String>> = r
                .points
                .iter()
                .map(|p| {
                    vec![
                        p.model.abbrev().to_string(),
                        f(p.error_mean, 2),
                        f(p.error_std, 2),
                    ]
                })
                .collect();
            print!(
                "{}",
                render_table(&["model".into(), "err %".into(), "std".into()], &rows)
            );
        }
        _ => usage(),
    }
}
