//! `perfpredict` — command-line front end for the library.
//!
//! ```text
//! perfpredict simulate  <benchmark>                 one configuration, full stats
//! perfpredict sweep     <benchmark> [--step N]      design-space sweep summary
//!                       [--space S] [--shards N]    (sharded work-stealing sweep over a
//!                       [--unit N] [--merged-out F]  named space: table1, smoke, mega)
//! perfpredict adaptive  <benchmark> [--initial N]   query-by-committee active learning
//!                       [--batch N] [--rounds N]    with lazy simulation
//! perfpredict sampled   <benchmark> [--rate pct]    sampled-DSE experiment
//! perfpredict chrono    <family>    [--year Y]      chronological prediction
//! perfpredict export-model <benchmark> [--model K]  train + save a .ppmodel artifact
//! perfpredict predict   <model.ppmodel>             one-shot JSONL replay on stdin
//! perfpredict serve     <model.ppmodel>             batched prediction service
//! perfpredict serve     --daemon [--preload n=p]…   long-lived multi-model daemon
//! perfpredict gen-requests <model.ppmodel>          synthetic JSONL workload
//! perfpredict perf-report --current <file>          compare metrics vs baselines
//! perfpredict families                              list SPEC populations
//! perfpredict benchmarks                            list workloads
//! ```
//!
//! Observability flags (any command):
//!
//! * `--trace` — verbose span/point logging to stderr (same as
//!   `PERFPREDICT_LOG=debug`).
//! * `--profile` — aggregate the span tree into a per-path self/total
//!   hot-path table on stderr at exit.
//! * `--metrics-out <path>` — write a JSON-lines run manifest with per-stage
//!   wall times, per-model train/predict timings, latency histograms, and
//!   cache/bpred counter rollups.
//! * `--json` — machine-readable result on stdout (simulate / sampled /
//!   chrono).
//! * `--checkpoint <path>` — (sweep / sampled) append completed work to a
//!   JSONL checkpoint and resume from it on restart; a killed run loses at
//!   most the unit in flight.
//! * `--export-models <dir>` — (sampled / chrono) save every freshly
//!   trained model into `<dir>` as a versioned `.ppmodel` artifact.
//!
//! Exit codes: `0` success, `2` invalid usage/input (including daemon
//! protocol violations: oversized or non-UTF-8 frames), `3` I/O failure,
//! `4` corrupt checkpoint or model artifact, `5` numerical failure
//! (singular system, divergence, degenerate data, no viable model),
//! `6` perf-report regression verdict, `7` overloaded / deadline
//! exceeded (typed per-request rejections in daemon mode), `8` every
//! model version quarantined — the daemon's fail-closed termination.

use perfpredict::cpusim::{
    merged_jsonl, simulate, try_sweep_design_space, try_sweep_sharded, Benchmark, CpuConfig,
    DesignSpace, ShardOptions, SimOptions, SpaceSpec,
};
use perfpredict::dse::adaptive::{try_run_adaptive, AdaptiveConfig, EvalMode};
use perfpredict::dse::chrono::{try_run_chronological, ChronoConfig};
use perfpredict::dse::data::try_table_from_sweep;
use perfpredict::dse::report::{f, render_table, render_trajectory};
use perfpredict::dse::sampled::{
    draw_sample, try_run_sampled_dse, SampledConfig, SamplingStrategy,
};
use perfpredict::error::{Error, Result};
use perfpredict::mlmodels::{self, ModelArtifact, ModelKind};
use perfpredict::serve::{
    generate_requests, serve_jsonl, Daemon, DaemonConfig, Engine, Precision, Registry,
    RegistryConfig, ServeConfig,
};
use perfpredict::specdata::ProcessorFamily;
use perfpredict::telemetry::{self, json::JsonObject, ConsoleLevel, TelemetryConfig};

fn usage() -> ! {
    eprintln!(
        "usage: perfpredict <command> [args]\n\
         commands:\n\
           simulate  <benchmark>              simulate one baseline configuration\n\
           sweep     <benchmark> [--step N] [--space S]\n\
                     [--shards N] [--unit N] [--merged-out F]\n\
                                              sweep a design space (default: Table-1 at\n\
                                              step 16; --space table1|smoke|mega picks a\n\
                                              named space, --step applies to table1 only).\n\
                                              --shards > 1 runs a work-stealing sharded\n\
                                              sweep over the --checkpoint ledger; \n\
                                              --merged-out writes canonical merged JSONL\n\
           adaptive  <benchmark> [--space S] [--initial N] [--batch N]\n\
                     [--rounds N] [--committee N] [--pool N]\n\
                     [--eval full|none|holdout=N] [--seed S]\n\
                                              active-learning DSE: simulate only the\n\
                                              committee-selected configurations\n\
           sampled   <benchmark> [--rate P]   sampled DSE at P%% (default 2)\n\
           chrono    <family> [--year Y]      train year Y (default 2005), predict Y+1\n\
           export-model <benchmark> [--model K] [--rate P] [--out F]\n\
                                              train one model on a P%% sample, save .ppmodel\n\
           predict   <model.ppmodel> [--input F]\n\
                                              one-shot replay: JSONL requests -> predictions\n\
           serve     <model.ppmodel> [--input F] [--workers N] [--window N]\n\
                     [--queue-cap N] [--cache-cap N] [--f32]\n\
                                              batched service with LRU cache; stats on stderr\n\
                                              --f32: verified single-precision inference\n\
           serve     --daemon [model.ppmodel] [--preload name=path]...\n\
                     [--socket P] [--input F] [--deadline-ms N]\n\
                     [--max-frame-bytes N] [--default-model NAME]\n\
                     [--workers N] [--window N] [--queue-cap N] [--cache-cap N]\n\
                                              long-lived multi-model daemon: framed JSONL\n\
                                              protocol (predict/load/reload/unload/status/\n\
                                              shutdown ops) on stdin or a unix socket\n\
           gen-requests <model.ppmodel> [--n N] [--distinct D] [--seed S]\n\
                                              emit a synthetic JSONL workload on stdout\n\
           perf-report [--current F]... [--baseline F]... [--threshold X]\n\
                                              compare bench/manifest metrics against\n\
                                              baselines; exit 6 on regression\n\
           families                           list SPEC processor populations\n\
           benchmarks                         list synthetic workloads\n\
         options (any command):\n\
           --trace                            verbose telemetry on stderr\n\
           --profile                          span-tree hot-path table on stderr at exit\n\
           --metrics-out <path>               write a JSON-lines run manifest\n\
           --json                             machine-readable result on stdout\n\
           --checkpoint <path>                (sweep/sampled) resumable JSONL checkpoint\n\
           --export-models <dir>              (sampled/chrono) save trained models as .ppmodel"
    );
    std::process::exit(2);
}

fn parse_flag(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

/// Parse `--flag N` with a default, rejecting unparseable values instead
/// of silently falling back.
fn parse_number<T: std::str::FromStr>(args: &[String], flag: &str, default: T) -> Result<T> {
    match parse_flag(args, flag) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| Error::invalid(format!("{flag} expects a number, got '{v}'"))),
    }
}

/// Remove a boolean flag from `args`, returning whether it was present.
fn take_switch(args: &mut Vec<String>, flag: &str) -> bool {
    let before = args.len();
    args.retain(|a| a != flag);
    args.len() != before
}

/// Collect every value of a repeatable `--flag value` pair, in order.
fn collect_values(args: &[String], flag: &str) -> Result<Vec<String>> {
    let mut values = Vec::new();
    let mut i = 0;
    while i < args.len() {
        if args[i] == flag {
            match args.get(i + 1) {
                Some(v) => values.push(v.clone()),
                None => return Err(Error::invalid(format!("{flag} requires a value"))),
            }
            i += 2;
        } else {
            i += 1;
        }
    }
    Ok(values)
}

/// Remove a `--flag value` pair from `args`, returning the value.
fn take_value(args: &mut Vec<String>, flag: &str) -> Result<Option<String>> {
    let Some(i) = args.iter().position(|a| a == flag) else {
        return Ok(None);
    };
    if i + 1 >= args.len() {
        return Err(Error::invalid(format!("{flag} requires a value")));
    }
    let v = args.remove(i + 1);
    args.remove(i);
    Ok(Some(v))
}

/// Build a design space from `--space` (table1 | smoke | mega) and
/// `--step` (a Table-1 decimation, meaningless for generated spaces).
fn space_arg(args: &[String]) -> Result<DesignSpace> {
    let name = parse_flag(args, "--space").unwrap_or_else(|| "table1".to_string());
    match name.as_str() {
        "table1" => {
            let step: usize = parse_number(args, "--step", 16)?;
            if step == 0 {
                return Err(Error::invalid("--step must be at least 1"));
            }
            Ok(DesignSpace::from_configs(
                DesignSpace::table1()
                    .configs()
                    .iter()
                    .copied()
                    .step_by(step)
                    .collect(),
            ))
        }
        "smoke" | "mega" => {
            if parse_flag(args, "--step").is_some() {
                return Err(Error::invalid("--step applies only to --space table1"));
            }
            let spec = if name == "smoke" {
                SpaceSpec::smoke()
            } else {
                SpaceSpec::mega()
            };
            DesignSpace::try_generate(&spec)
        }
        other => Err(Error::invalid(format!(
            "unknown space '{other}' — one of table1, smoke, mega"
        ))),
    }
}

fn benchmark_arg(args: &[String]) -> Result<Benchmark> {
    let name = args
        .first()
        .ok_or_else(|| Error::invalid("missing benchmark argument"))?;
    Benchmark::from_name(name).ok_or_else(|| {
        Error::invalid(format!(
            "unknown benchmark '{name}' — try `perfpredict benchmarks`"
        ))
    })
}

fn main() {
    match cli() {
        Ok(()) => {}
        Err(e) => {
            eprintln!("perfpredict: {e}");
            std::process::exit(e.exit_code());
        }
    }
}

fn cli() -> Result<()> {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let trace = take_switch(&mut args, "--trace");
    let profile = take_switch(&mut args, "--profile");
    let json_out = take_switch(&mut args, "--json");
    let metrics_out = take_value(&mut args, "--metrics-out")?;
    let checkpoint = take_value(&mut args, "--checkpoint")?;
    let export_models = take_value(&mut args, "--export-models")?;
    let Some(cmd) = args.first().cloned() else {
        usage()
    };
    let rest = &args[1..];

    // Install telemetry only when some sink will consume it, so plain CLI
    // runs keep the disabled fast path.
    let mut tcfg = TelemetryConfig::new(cmd.as_str())
        .meta("command", args.join(" "))
        .meta("seed", 42);
    if trace {
        tcfg = tcfg.console(ConsoleLevel::Debug);
    }
    if profile {
        tcfg = tcfg.profile(true);
    }
    if let Some(path) = &metrics_out {
        tcfg = tcfg.jsonl(path);
    }
    let run_handle = if tcfg.console > ConsoleLevel::Off || tcfg.jsonl_path.is_some() || profile {
        match telemetry::install(tcfg) {
            Ok(h) => Some(h),
            Err(e) => {
                let path = metrics_out.as_deref().unwrap_or("<none>");
                return Err(Error::io(
                    path,
                    std::io::Error::other(format!("cannot open metrics file: {e}")),
                ));
            }
        }
    } else {
        None
    };

    match cmd.as_str() {
        "benchmarks" => {
            for b in Benchmark::ALL12 {
                let p = b.profile();
                println!(
                    "{:8} {} footprint {:>5} KB, {} blocks",
                    b.name(),
                    if p.is_fp { "fp " } else { "int" },
                    p.data_footprint / 1024,
                    p.code_blocks,
                );
            }
        }
        "families" => {
            for fam in ProcessorFamily::ALL {
                let s = fam.paper_stats();
                let (y0, y1) = fam.year_span();
                println!(
                    "{:10} {:3} records, {}-{}, {} socket(s)",
                    fam.name(),
                    s.records,
                    y0,
                    y1,
                    fam.chips()
                );
            }
        }
        "simulate" => {
            let b = benchmark_arg(rest)?;
            let r = simulate(b, CpuConfig::baseline(), &SimOptions::default());
            let s = &r.stats;
            if json_out {
                println!(
                    "{}",
                    JsonObject::new()
                        .str("benchmark", b.name())
                        .num("cycles", r.cycles)
                        .uint("instructions", s.instructions)
                        .num("ipc", s.ipc())
                        .num(
                            "l1d_miss_rate",
                            s.l1d_misses as f64 / s.l1d_accesses.max(1) as f64
                        )
                        .num(
                            "l1i_miss_rate",
                            s.l1i_misses as f64 / s.l1i_accesses.max(1) as f64
                        )
                        .num("bpred_miss_rate", s.mispredict_rate())
                        .finish()
                );
            } else {
                println!("{} on the baseline configuration:", b.name());
                println!("  cycles        {:>12.0}", r.cycles);
                println!("  instructions  {:>12}", s.instructions);
                println!("  IPC           {:>12.3}", s.ipc());
                println!(
                    "  L1D miss rate {:>12.3}",
                    s.l1d_misses as f64 / s.l1d_accesses.max(1) as f64
                );
                println!(
                    "  L1I miss rate {:>12.3}",
                    s.l1i_misses as f64 / s.l1i_accesses.max(1) as f64
                );
                println!("  bpred miss    {:>12.3}", s.mispredict_rate());
            }
        }
        "sweep" => {
            let b = benchmark_arg(rest)?;
            let space = space_arg(rest)?;
            let shards: usize = parse_number(rest, "--shards", 1)?;
            let unit: usize = parse_number(rest, "--unit", 64)?;
            let merged_out = parse_flag(rest, "--merged-out");
            eprintln!("sweeping {} configurations…", space.len());
            let results = if shards > 1 {
                let ledger = checkpoint.as_deref().ok_or_else(|| {
                    Error::invalid(
                        "--shards requires --checkpoint <path> (the work-stealing ledger)",
                    )
                })?;
                let outcome = try_sweep_sharded(
                    &space,
                    b,
                    &SimOptions::default(),
                    &ShardOptions {
                        shards,
                        unit_size: unit,
                    },
                    ledger,
                )?;
                eprintln!(
                    "shards: {} workers over {} units ({} reclaimed), \
                     {} restored, {} simulated",
                    shards, outcome.units, outcome.reclaimed, outcome.restored, outcome.simulated
                );
                outcome.results
            } else {
                let outcome = try_sweep_design_space(
                    &space,
                    b,
                    &SimOptions::default(),
                    checkpoint.as_deref(),
                )?;
                if checkpoint.is_some() {
                    eprintln!(
                        "checkpoint: {} restored, {} simulated",
                        outcome.restored, outcome.simulated
                    );
                }
                outcome.results
            };
            if let Some(path) = &merged_out {
                std::fs::write(path, merged_jsonl(&results)).map_err(|e| Error::io(path, e))?;
                eprintln!("merged results written to {path}");
            }
            let summary = perfpredict::cpusim::runner::summarize_sweep(&results);
            let mut by_cycles: Vec<_> = results.iter().collect();
            by_cycles.sort_by(|a, b| a.cycles.total_cmp(&b.cycles));
            println!(
                "{}: range {:.2}x, variation {:.3}",
                b.name(),
                summary.range,
                summary.variation
            );
            println!("fastest configurations:");
            for r in by_cycles.iter().take(3) {
                let c = &r.config;
                println!(
                    "  {:>10.0} cycles  L1I {:>2}K L1D {:>2}K L2 {:>4}K L3 {} {} w{}",
                    r.cycles,
                    c.l1i.size_kb,
                    c.l1d.size_kb,
                    c.l2.size_kb,
                    if c.l3.is_some() { "8M" } else { " -" },
                    c.bpred.name(),
                    c.width,
                );
            }
        }
        "adaptive" => {
            let b = benchmark_arg(rest)?;
            let space = space_arg(rest)?;
            let defaults = AdaptiveConfig::default();
            let eval = match parse_flag(rest, "--eval").as_deref() {
                None | Some("full") => EvalMode::FullSpace,
                Some("none") => EvalMode::AcquisitionOnly,
                Some(v) => match v.strip_prefix("holdout=").and_then(|k| k.parse().ok()) {
                    Some(k) => EvalMode::Holdout(k),
                    None => {
                        return Err(Error::invalid(format!(
                            "--eval expects full, none, or holdout=N, got '{v}'"
                        )))
                    }
                },
            };
            let cfg = AdaptiveConfig {
                initial: parse_number(rest, "--initial", defaults.initial)?,
                batch: parse_number(rest, "--batch", defaults.batch)?,
                rounds: parse_number(rest, "--rounds", defaults.rounds)?,
                committee: parse_number(rest, "--committee", defaults.committee)?,
                pool: parse_number(rest, "--pool", defaults.pool)?,
                eval,
                seed: parse_number(rest, "--seed", defaults.seed)?,
                ..defaults
            };
            eprintln!(
                "adaptive DSE on {} ({} configurations, budget {})…",
                b.name(),
                space.len(),
                cfg.initial + cfg.batch * cfg.rounds
            );
            let r = try_run_adaptive(b, &space, &cfg, None, checkpoint.as_deref())?;
            eprintln!("simulated {} configurations", r.simulated);
            if json_out {
                let points: Vec<String> = r
                    .trajectory
                    .iter()
                    .map(|p| {
                        let mut obj = JsonObject::new().uint("budget", p.budget as u64);
                        if p.adaptive_error.is_finite() {
                            obj = obj.num("adaptive_error", p.adaptive_error);
                        }
                        if p.random_error.is_finite() {
                            obj = obj.num("random_error", p.random_error);
                        }
                        obj.finish()
                    })
                    .collect();
                println!(
                    "{}",
                    JsonObject::new()
                        .str("benchmark", b.name())
                        .uint("space_size", space.len() as u64)
                        .uint("simulated", r.simulated as u64)
                        .raw("trajectory", &format!("[{}]", points.join(",")))
                        .finish()
                );
            } else {
                print!("{}", render_trajectory(&r.trajectory));
            }
        }
        "sampled" => {
            let b = benchmark_arg(rest)?;
            let rate: f64 = parse_number(rest, "--rate", 2.0)?;
            let space = DesignSpace::from_configs(
                DesignSpace::table1()
                    .configs()
                    .iter()
                    .copied()
                    .step_by(4)
                    .collect(),
            );
            let cfg = SampledConfig {
                sampling_rates: vec![rate / 100.0],
                strategy: SamplingStrategy::Random,
                models: ModelKind::FIGURE2_ORDER.to_vec(),
                sim: SimOptions::default(),
                seed: 42,
                estimate_errors: true,
                export_models: export_models.clone(),
            };
            eprintln!(
                "sampled DSE on {} ({} configs at {rate}%)…",
                b.name(),
                space.len()
            );
            let run = try_run_sampled_dse(b, &space, &cfg, None, checkpoint.as_deref())?;
            for d in &run.dropped {
                eprintln!(
                    "dropped {} at {:.0}%: {} ({})",
                    d.model.abbrev(),
                    d.rate * 100.0,
                    d.reason,
                    d.detail
                );
            }
            if json_out {
                let points: Vec<String> = run
                    .points
                    .iter()
                    .map(|p| {
                        let mut obj = JsonObject::new()
                            .str("model", p.model.abbrev())
                            .num("rate", p.rate)
                            .uint("sample_size", p.sample_size as u64)
                            .num("true_error", p.true_error)
                            .num("true_error_std", p.true_error_std);
                        if let Some(est) = &p.estimated {
                            obj = obj
                                .num("estimated_mean", est.mean)
                                .num("estimated_max", est.max);
                        }
                        obj.finish()
                    })
                    .collect();
                println!(
                    "{}",
                    JsonObject::new()
                        .str("benchmark", b.name())
                        .uint("space_size", run.space_size as u64)
                        .num("range", run.range)
                        .num("variation", run.variation)
                        .raw("points", &format!("[{}]", points.join(",")))
                        .finish()
                );
            } else {
                let rows: Vec<Vec<String>> = run
                    .points
                    .iter()
                    .map(|p| {
                        vec![
                            p.model.abbrev().to_string(),
                            f(p.true_error, 2),
                            p.estimated
                                .map(|est| f(est.max, 2))
                                .unwrap_or_else(|| "-".to_string()),
                        ]
                    })
                    .collect();
                print!(
                    "{}",
                    render_table(
                        &["model".into(), "true err %".into(), "estimated %".into()],
                        &rows,
                    )
                );
            }
        }
        "chrono" => {
            let name = rest
                .first()
                .ok_or_else(|| Error::invalid("missing family argument"))?;
            let fam = ProcessorFamily::from_name(name).ok_or_else(|| {
                Error::invalid(format!(
                    "unknown family '{name}' — try `perfpredict families`"
                ))
            })?;
            let year: u32 = parse_number(rest, "--year", 2005)?;
            let cfg = ChronoConfig {
                train_year: year,
                models: ModelKind::FIGURE7_ORDER.to_vec(),
                data_seed: 42,
                seed: 42,
                estimate_errors: false,
                export_models: export_models.clone(),
            };
            let r = try_run_chronological(fam, &cfg)?;
            for d in &r.dropped {
                eprintln!("dropped {}: {} ({})", d.kind.abbrev(), d.reason, d.detail);
            }
            if json_out {
                let points: Vec<String> = r
                    .points
                    .iter()
                    .map(|p| {
                        JsonObject::new()
                            .str("model", p.model.abbrev())
                            .num("error_mean", p.error_mean)
                            .num("error_std", p.error_std)
                            .finish()
                    })
                    .collect();
                println!(
                    "{}",
                    JsonObject::new()
                        .str("family", fam.name())
                        .uint("train_year", year as u64)
                        .uint("n_train", r.n_train as u64)
                        .uint("n_test", r.n_test as u64)
                        .raw("points", &format!("[{}]", points.join(",")))
                        .finish()
                );
            } else {
                println!(
                    "{}: train {} ({} records) -> predict {} ({} records)",
                    fam.name(),
                    year,
                    r.n_train,
                    year + 1,
                    r.n_test
                );
                let rows: Vec<Vec<String>> = r
                    .points
                    .iter()
                    .map(|p| {
                        vec![
                            p.model.abbrev().to_string(),
                            f(p.error_mean, 2),
                            f(p.error_std, 2),
                        ]
                    })
                    .collect();
                print!(
                    "{}",
                    render_table(&["model".into(), "err %".into(), "std".into()], &rows)
                );
            }
        }
        "export-model" => {
            let b = benchmark_arg(rest)?;
            let rate: f64 = parse_number(rest, "--rate", 5.0)?;
            if !(rate > 0.0 && rate <= 100.0) {
                return Err(Error::invalid(format!(
                    "--rate must be in (0, 100], got {rate}"
                )));
            }
            let kind_name = parse_flag(rest, "--model").unwrap_or_else(|| "NN-E".to_string());
            let kind = ModelKind::from_abbrev(&kind_name).ok_or_else(|| {
                Error::invalid(format!(
                    "unknown model '{kind_name}' — one of {}",
                    ModelKind::ALL
                        .iter()
                        .map(|k| k.abbrev())
                        .collect::<Vec<_>>()
                        .join(", ")
                ))
            })?;
            let seed: u64 = parse_number(rest, "--seed", 42)?;
            let out = parse_flag(rest, "--out")
                .unwrap_or_else(|| format!("{}_{}.ppmodel", b.name(), kind.abbrev()));
            let space = DesignSpace::from_configs(
                DesignSpace::table1()
                    .configs()
                    .iter()
                    .copied()
                    .step_by(4)
                    .collect(),
            );
            eprintln!(
                "export-model: sweeping {} configurations of {}…",
                space.len(),
                b.name()
            );
            let outcome =
                try_sweep_design_space(&space, b, &SimOptions::default(), checkpoint.as_deref())?;
            let full = try_table_from_sweep(&outcome.results)?;
            let n = full.n_rows();
            let k = ((n as f64 * rate / 100.0).round() as usize).max(8).min(n);
            let rows = draw_sample(SamplingStrategy::Random, &outcome.results, n, k, seed)?;
            let sample = full.select_rows(&rows);
            let model = mlmodels::try_train(kind, &sample, seed)?;
            let artifact = ModelArtifact::from_training(model, &sample);
            artifact.save(&out)?;
            if json_out {
                println!(
                    "{}",
                    JsonObject::new()
                        .str("benchmark", b.name())
                        .str("model", kind.abbrev())
                        .uint("sample_size", sample.n_rows() as u64)
                        .uint("space_size", n as u64)
                        .str("path", &out)
                        .finish()
                );
            } else {
                println!(
                    "trained {} on {}/{} rows of {}, saved {out}",
                    kind.abbrev(),
                    sample.n_rows(),
                    n,
                    b.name()
                );
            }
        }
        "predict" => {
            let path = rest
                .first()
                .ok_or_else(|| Error::invalid("missing model-artifact argument"))?;
            let artifact = ModelArtifact::load(path)?;
            let input = match parse_flag(rest, "--input") {
                Some(p) => std::fs::read_to_string(&p).map_err(|e| Error::io(&p, e))?,
                None => {
                    use std::io::Read as _;
                    let mut buf = String::new();
                    std::io::stdin()
                        .read_to_string(&mut buf)
                        .map_err(|e| Error::io("<stdin>", e))?;
                    buf
                }
            };
            let (responses, stats) = serve_jsonl(artifact, ServeConfig::default(), &input)?;
            print!("{responses}");
            eprintln!(
                "predict: {} requests, {} predictions, {} cache hits",
                stats.requests, stats.predictions, stats.cache_hits
            );
        }
        "serve" if rest.iter().any(|a| a == "--daemon") => {
            let daemon_defaults = DaemonConfig::default();
            let config = DaemonConfig {
                window: parse_number(rest, "--window", daemon_defaults.window)?,
                queue_cap: parse_number(rest, "--queue-cap", daemon_defaults.queue_cap)?,
                workers: parse_number(rest, "--workers", daemon_defaults.workers)?,
                deadline_ms: match parse_flag(rest, "--deadline-ms") {
                    None => None,
                    Some(v) => Some(v.parse().map_err(|_| {
                        Error::invalid(format!("--deadline-ms expects a number, got '{v}'"))
                    })?),
                },
                max_frame_bytes: parse_number(
                    rest,
                    "--max-frame-bytes",
                    daemon_defaults.max_frame_bytes,
                )?,
                default_model: parse_flag(rest, "--default-model"),
            };
            let registry_defaults = RegistryConfig::default();
            let mut registry = Registry::new(RegistryConfig {
                cache_cap: parse_number(rest, "--cache-cap", registry_defaults.cache_cap)?,
                ..registry_defaults
            });
            // A corrupt preload is a startup error (exit 4): fail fast
            // before accepting traffic. Corruption *after* startup is
            // handled by quarantine instead.
            for spec in collect_values(rest, "--preload")? {
                let (name, path) = spec.split_once('=').ok_or_else(|| {
                    Error::invalid(format!("--preload expects name=path, got '{spec}'"))
                })?;
                let version = registry.load(name, path)?;
                eprintln!("daemon: preloaded {name}@{version} from {path}");
            }
            // The optional positional artifact is the first arg that is
            // neither a flag nor the value of a value-taking flag.
            let value_flags = [
                "--preload",
                "--socket",
                "--input",
                "--deadline-ms",
                "--max-frame-bytes",
                "--default-model",
                "--workers",
                "--window",
                "--queue-cap",
                "--cache-cap",
            ];
            let mut positional = None;
            let mut args_iter = rest.iter();
            while let Some(arg) = args_iter.next() {
                if value_flags.contains(&arg.as_str()) {
                    let _ = args_iter.next();
                } else if !arg.starts_with("--") {
                    positional = Some(arg);
                    break;
                }
            }
            if let Some(path) = positional {
                let name = std::path::Path::new(path)
                    .file_stem()
                    .and_then(|s| s.to_str())
                    .unwrap_or("model")
                    .to_string();
                let version = registry.load(&name, path)?;
                eprintln!("daemon: preloaded {name}@{version} from {path}");
            }
            let mut daemon = Daemon::new(config, registry)?;
            let stats = match parse_flag(rest, "--socket") {
                Some(sock) => {
                    eprintln!("daemon: listening on unix socket {sock}");
                    daemon.run_socket(&sock)?
                }
                None => {
                    use std::io::BufRead;
                    let input: Box<dyn BufRead + Send> = match parse_flag(rest, "--input") {
                        Some(p) => {
                            let file = std::fs::File::open(&p).map_err(|e| Error::io(&p, e))?;
                            Box::new(std::io::BufReader::new(file))
                        }
                        None => Box::new(std::io::BufReader::new(std::io::stdin())),
                    };
                    let writer = std::sync::Arc::new(std::sync::Mutex::new(std::io::stdout()));
                    daemon.run(input, writer)?
                }
            };
            if json_out {
                eprintln!("{}", stats.to_json());
            } else {
                eprintln!(
                    "daemon: {} requests ({} hits / {} misses), {} shed, \
                     {} deadline misses, {} degraded rejects, {} invalid, \
                     {} control ops, p50 {:.3} ms, p99 {:.3} ms",
                    stats.requests,
                    stats.cache_hits,
                    stats.cache_misses,
                    stats.shed,
                    stats.deadline_misses,
                    stats.degraded_rejects,
                    stats.invalid,
                    stats.control_ops,
                    stats.p50_ms,
                    stats.p99_ms
                );
            }
        }
        "serve" => {
            let path = rest
                .first()
                .ok_or_else(|| Error::invalid("missing model-artifact argument"))?;
            let artifact = ModelArtifact::load(path)?;
            let defaults = ServeConfig::default();
            let config = ServeConfig {
                window: parse_number(rest, "--window", defaults.window)?,
                queue_cap: parse_number(rest, "--queue-cap", defaults.queue_cap)?,
                workers: parse_number(rest, "--workers", defaults.workers)?,
                cache_cap: parse_number(rest, "--cache-cap", defaults.cache_cap)?,
            };
            let precision = if rest.iter().any(|a| a == "--f32") {
                Precision::F32
            } else {
                Precision::F64
            };
            let mut engine = Engine::with_precision(artifact, config, precision)?;
            let stdout = std::io::stdout();
            let mut out = std::io::BufWriter::new(stdout.lock());
            let stats = match parse_flag(rest, "--input") {
                Some(p) => {
                    let file = std::fs::File::open(&p).map_err(|e| Error::io(&p, e))?;
                    engine.serve(&mut std::io::BufReader::new(file), &mut out)?
                }
                None => {
                    let stdin = std::io::stdin();
                    engine.serve(&mut stdin.lock(), &mut out)?
                }
            };
            use std::io::Write as _;
            out.flush().map_err(|e| Error::io("<stdout>", e))?;
            if json_out {
                eprintln!("{}", stats.to_json());
            } else {
                eprintln!(
                    "serve: {} requests in {} batches, {} predictions, \
                     {} hits / {} misses, p50 {:.3} ms, p95 {:.3} ms, \
                     p99 {:.3} ms, max {:.3} ms, {:.0} req/s",
                    stats.requests,
                    stats.batches,
                    stats.predictions,
                    stats.cache_hits,
                    stats.cache_misses,
                    stats.p50_ms,
                    stats.p95_ms,
                    stats.p99_ms,
                    stats.max_ms,
                    stats.requests_per_sec
                );
            }
        }
        "perf-report" => {
            use std::path::Path;
            use telemetry::report::{compare, MetricSet};
            let currents = collect_values(rest, "--current")?;
            if currents.is_empty() {
                return Err(Error::invalid(
                    "perf-report requires at least one --current <file> \
                     (a bench BENCH_*.json or a --metrics-out manifest)",
                ));
            }
            let mut baselines = collect_values(rest, "--baseline")?;
            if baselines.is_empty() {
                // Default to the committed bench baselines that exist.
                baselines = ["selection", "nn", "dse", "serve"]
                    .iter()
                    .map(|b| format!("BENCH_{b}.json"))
                    .filter(|p| Path::new(p).exists())
                    .collect();
                if baselines.is_empty() {
                    return Err(Error::invalid(
                        "no --baseline given and no BENCH_*.json found in the \
                         working directory",
                    ));
                }
            }
            let threshold: f64 = parse_number(rest, "--threshold", 1.5)?;
            let mut current = MetricSet::new();
            for p in &currents {
                current.load(Path::new(p)).map_err(Error::invalid)?;
            }
            let mut baseline = MetricSet::new();
            for p in &baselines {
                baseline.load(Path::new(p)).map_err(Error::invalid)?;
            }
            let report = compare(&current, &baseline, threshold).map_err(Error::invalid)?;
            if json_out {
                println!("{}", report.to_json());
            } else {
                print!("{}", report.render_text());
            }
            if !report.passed() {
                let mut regressed = report.regressions();
                regressed.sort_by(|a, b| b.ratio.total_cmp(&a.ratio));
                return Err(Error::Regression {
                    metrics: regressed
                        .iter()
                        .map(|d| format!("{} {:.2}x", d.name, d.ratio))
                        .collect(),
                });
            }
        }
        "gen-requests" => {
            let path = rest
                .first()
                .ok_or_else(|| Error::invalid("missing model-artifact argument"))?;
            let artifact = ModelArtifact::load(path)?;
            let n: usize = parse_number(rest, "--n", 1000)?;
            let distinct: usize = parse_number(rest, "--distinct", 32)?;
            let seed: u64 = parse_number(rest, "--seed", 42)?;
            let lines = generate_requests(&artifact.schema, n, distinct, seed)?;
            print!("{lines}");
        }
        _ => usage(),
    }

    if let Some(handle) = run_handle {
        let summary = handle.finish();
        if let Some(path) = &metrics_out {
            eprintln!("{} (manifest: {path})", summary.one_line());
        }
        if profile && !summary.profile.is_empty() {
            eprint!("{}", telemetry::profile::render_table(&summary.profile));
        }
    }
    Ok(())
}
